"""The five function templates (paper Fig. 5).

A template encapsulates one component's *fixed processing logic* and exposes
only its *resource parameters* -- the decoupling at the heart of TSN-Builder.
Each template knows:

* which of the seven customization APIs (Table II) parameterize it;
* its memory resources for a given :class:`~repro.core.config.SwitchConfig`
  (the component's slice of the Fig. 4 resource view);
* how to *elaborate* for a platform: the ``sim`` backend returns the
  component classes the dataplane substrate integrates
  (:class:`~repro.switch.device.TsnSwitch` plays the role FAST played for
  the FPGA prototype), and the ``rtl`` backend emits a parameterized
  Verilog module (:mod:`repro.rtl`).

Submodule structure follows the paper:

=================  =====================================================
Time Sync          clock collection, correction calculation, clock
                   correction (gPTP)
Packet Switch      parser, lookup
Ingress Filter     classifier, meters
Gate Ctrl          In/Out GCL update, queue gates
Egress Sched       strict-priority scheduler, CBS (token bucket)
=================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type

from .config import SwitchConfig
from .errors import SynthesisError
from .resources import (
    BufferResource,
    Component,
    QueueResource,
    TableResource,
)

__all__ = [
    "FunctionTemplate",
    "TimeSyncTemplate",
    "PacketSwitchTemplate",
    "IngressFilterTemplate",
    "GateCtrlTemplate",
    "EgressSchedTemplate",
    "DEFAULT_TEMPLATES",
    "default_template_set",
]


@dataclass(frozen=True)
class FunctionTemplate:
    """Base description shared by the five templates."""

    #: Which component of the composition (Fig. 3) this template implements.
    component: Component = Component.TIME_SYNC
    #: The Table II API calls that parameterize this template.
    api_calls: Tuple[str, ...] = ()
    #: Submodules of the fixed processing logic (Fig. 5).
    submodules: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.component.value

    # ------------------------------------------------------------ resources

    def table_resources(self, config: SwitchConfig) -> List[TableResource]:
        """This template's table slice of the config's resource view."""
        return [
            table
            for table in config.table_resources()
            if table.component is self.component
        ]

    def parameters(self, config: SwitchConfig) -> Dict[str, int]:
        """The injected resource parameters this template consumes."""
        return {}

    def validate(self, config: SwitchConfig) -> None:
        """Template-specific consistency checks beyond config.validate()."""
        config.validate()


class TimeSyncTemplate(FunctionTemplate):
    """gPTP time synchronization: no table resources, only logic + registers.

    The paper's resource view (Fig. 4) assigns Time Sync no BRAM tables --
    its state is a handful of registers -- which is why Table II has no
    ``set_*`` call for it.  Elaboration binds the
    :mod:`repro.timesync` gPTP engine to the device clock.
    """

    def __init__(self) -> None:
        super().__init__(
            component=Component.TIME_SYNC,
            api_calls=(),
            submodules=(
                "clock_collection",
                "correction_calculation",
                "clock_correction",
            ),
        )


class PacketSwitchTemplate(FunctionTemplate):
    """Forwarding lookup: parser + unicast/multicast table search."""

    def __init__(self) -> None:
        super().__init__(
            component=Component.PACKET_SWITCH,
            api_calls=("set_switch_tbl",),
            submodules=("parser", "lookup"),
        )

    def parameters(self, config: SwitchConfig) -> Dict[str, int]:
        return {
            "unicast_size": config.unicast_size,
            "multicast_size": config.multicast_size,
        }


class IngressFilterTemplate(FunctionTemplate):
    """Flow classification + token-bucket policing."""

    def __init__(self) -> None:
        super().__init__(
            component=Component.INGRESS_FILTER,
            api_calls=("set_class_tbl", "set_meter_tbl"),
            submodules=("classifier", "meters"),
        )

    def parameters(self, config: SwitchConfig) -> Dict[str, int]:
        return {
            "class_size": config.class_size,
            "meter_size": config.meter_size,
        }


class GateCtrlTemplate(FunctionTemplate):
    """Gated queue management: In/Out GCLs, metadata queues, buffer pool."""

    def __init__(self) -> None:
        super().__init__(
            component=Component.GATE_CTRL,
            api_calls=("set_gate_tbl", "set_queues", "set_buffers"),
            submodules=("gcl_update", "in_gates", "out_gates", "queues"),
        )

    def parameters(self, config: SwitchConfig) -> Dict[str, int]:
        return {
            "gate_size": config.gate_size,
            "queue_num": config.queue_num,
            "queue_depth": config.queue_depth,
            "buffer_num": config.buffer_num,
            "port_num": config.port_num,
        }

    def queue_resource(self, config: SwitchConfig) -> QueueResource:
        return config.queue_resource()

    def buffer_resource(self, config: SwitchConfig) -> BufferResource:
        return config.buffer_resource()


class EgressSchedTemplate(FunctionTemplate):
    """Strict-priority selection with credit-based shaping.

    Subclass and override :meth:`scheduler_factory` to swap the arbitration
    logic (e.g. deficit round robin below the TS queues) while keeping the
    CBS resource parameters -- the "replace a template, reuse the rest"
    workflow of the paper's developing model.
    """

    def __init__(self) -> None:
        super().__init__(
            component=Component.EGRESS_SCHED,
            api_calls=("set_cbs_tbl",),
            submodules=("scheduler", "cbs"),
        )

    def parameters(self, config: SwitchConfig) -> Dict[str, int]:
        return {
            "cbs_map_size": config.cbs_map_size,
            "cbs_size": config.cbs_size,
            "port_num": config.port_num,
        }

    def scheduler_factory(self):
        """Build one port's egress arbiter (called per port at elaboration)."""
        from repro.switch.scheduler import StrictPriorityScheduler

        return StrictPriorityScheduler()


#: The template classes in composition order.
DEFAULT_TEMPLATES: Tuple[Type[FunctionTemplate], ...] = (
    PacketSwitchTemplate,
    IngressFilterTemplate,
    GateCtrlTemplate,
    EgressSchedTemplate,
    TimeSyncTemplate,
)


def default_template_set() -> List[FunctionTemplate]:
    """Instances of all five templates."""
    return [cls() for cls in DEFAULT_TEMPLATES]


def check_complete(templates: Sequence[FunctionTemplate]) -> None:
    """A synthesizable set must cover all five components exactly once."""
    seen: Dict[Component, str] = {}
    for template in templates:
        if template.component in seen:
            raise SynthesisError(
                f"component {template.component.value!r} provided by both "
                f"{seen[template.component]!r} and "
                f"{type(template).__name__!r}"
            )
        seen[template.component] = type(template).__name__
    missing = [c.value for c in Component if c not in seen]
    if missing:
        raise SynthesisError(f"no template for component(s): {missing}")
