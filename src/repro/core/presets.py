"""Published parameter sets used by the paper's evaluation.

Two sources:

* The **Broadcom BCM53154** datasheet parameters the paper uses as its COTS
  baseline (Section IV.B): 4 TSN ports, 16K MAC entries, 1K classification
  entries, 512 meters, 8 queues/shapers per port, 1 MB total buffer.  The
  datasheet only gives a rough description; the paper sets every unknown
  parameter equal to the customized value, and we do the same.

* The **customized** configurations for the three evaluated topologies
  (star / linear / ring) and the two motivation cases of Table I.

These functions exist so benchmarks and tests reference the published
numbers from one place.
"""

from __future__ import annotations

from .config import SwitchConfig

__all__ = [
    "bcm53154_config",
    "customized_config",
    "star_config",
    "linear_config",
    "ring_config",
    "table1_case1",
    "table1_case2",
    "TOPOLOGY_PORTS",
]

#: Enabled TSN ports per evaluated topology (paper Section IV.A): star core
#: node has 3 children, linear nodes forward bidirectionally on 2 ports, ring
#: nodes forward unidirectionally on 1 port.
TOPOLOGY_PORTS = {"star": 3, "linear": 2, "ring": 1}


def bcm53154_config() -> SwitchConfig:
    """The commercial baseline column of Table III (4 ports, 10818 Kb)."""
    return SwitchConfig(
        name="BCM53154 (commercial)",
        port_num=4,
        unicast_size=16 * 1024,  # 16K MAC entries
        multicast_size=0,
        class_size=1024,         # 1K classification entries
        meter_size=512,          # 512 meters
        gate_size=2,             # CQF: two-entry GCLs (set as customized)
        queue_num=8,             # 8 queues per port
        cbs_map_size=8,          # 8 shapers per port
        cbs_size=8,
        queue_depth=16,          # Table I Case 1 / Table III commercial column
        buffer_num=128,          # ~1 MB buffer: 128 x 2048 B x 4 ports
    )


def customized_config(
    port_num: int,
    name: str = "customized",
    flow_count: int = 1024,
    queue_depth: int = 12,
    buffer_num: int = 96,
    rc_queue_num: int = 3,
) -> SwitchConfig:
    """A Table III customized column for *port_num* enabled ports.

    Defaults reproduce the paper's evaluation: 1024 TS flows (so 1024-entry
    switch/class/meter tables), CQF two-entry gate tables, three RC queues
    per port, queue depth 12 and 96 buffers per port (ITP-sized, Table I
    Case 2).
    """
    return SwitchConfig(
        name=name,
        port_num=port_num,
        unicast_size=flow_count,
        multicast_size=0,
        class_size=flow_count,
        meter_size=flow_count,
        gate_size=2,
        queue_num=8,
        cbs_map_size=rc_queue_num,
        cbs_size=rc_queue_num,
        queue_depth=queue_depth,
        buffer_num=buffer_num,
    )


def star_config() -> SwitchConfig:
    """Customized switch for the star topology (3 ports, 5778 Kb, -46.59%)."""
    return customized_config(TOPOLOGY_PORTS["star"], "Customized (Star, 3 ports)")


def linear_config() -> SwitchConfig:
    """Customized switch for the linear topology (2 ports, 3942 Kb, -63.56%)."""
    return customized_config(TOPOLOGY_PORTS["linear"], "Customized (Linear, 2 ports)")


def ring_config() -> SwitchConfig:
    """Customized switch for the ring topology (1 port, 2106 Kb, -80.53%)."""
    return customized_config(TOPOLOGY_PORTS["ring"], "Customized (Ring, 1 port)")


def table1_case1() -> SwitchConfig:
    """Motivation Table I, Case 1: 8 queues x 16 deep, 128 buffers, 1 port."""
    return customized_config(
        port_num=1, name="Table I Case 1", queue_depth=16, buffer_num=128
    )


def table1_case2() -> SwitchConfig:
    """Motivation Table I, Case 2: 8 queues x 12 deep, 96 buffers, 1 port."""
    return customized_config(
        port_num=1, name="Table I Case 2", queue_depth=12, buffer_num=96
    )
