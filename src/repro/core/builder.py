"""TSN-Builder itself: template selection, parameter injection, synthesis.

The developer workflow reproduces paper Section III.C:

1. pick the function templates (the default set covers the five-component
   composition of Fig. 3);
2. inject the application-specific resource parameters through the
   :class:`~repro.core.api.CustomizationAPI` (or hand a finished
   :class:`~repro.core.config.SwitchConfig`, e.g. one derived by the
   :mod:`~repro.core.sizing` guidelines);
3. ``synthesize()`` -- validate template coverage and parameters, and get a
   :class:`SwitchModel` bound to a platform backend.

The model is the platform-independence boundary: the same ``SwitchModel``
can ``instantiate()`` a behavioural :class:`~repro.switch.device.TsnSwitch`
for the simulation testbed, or ``emit_verilog()`` the parameterized RTL of
the five templates (what the FPGA flow would synthesize).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .api import CustomizationAPI
from .config import SwitchConfig
from .errors import SynthesisError
from .resources import ResourceReport
from .templates import (
    FunctionTemplate,
    check_complete,
    default_template_set,
)

__all__ = ["TSNBuilder", "SwitchModel", "PLATFORMS"]

#: Supported elaboration backends.
PLATFORMS = ("sim", "rtl")


@dataclass
class SwitchModel:
    """A synthesized switch: templates + frozen resource configuration."""

    config: SwitchConfig
    templates: List[FunctionTemplate]
    platform: str = "sim"

    def resource_report(self, title: Optional[str] = None) -> ResourceReport:
        """The model's BRAM consumption (a Table III column)."""
        return self.config.resource_report(title)

    @property
    def total_bram_kb(self) -> float:
        return self.config.total_bram_kb

    def template_parameters(self) -> Dict[str, Dict[str, int]]:
        """Per-template view of the injected parameters (for reports)."""
        return {
            template.name: template.parameters(self.config)
            for template in self.templates
        }

    # ----------------------------------------------------------- sim backend

    def instantiate(self, sim, **kwargs):
        """Build the behavioural switch for the simulation platform.

        The Egress Sched template supplies the per-port scheduler factory,
        so replacing that template changes the arbitration logic of every
        instantiated switch.  Extra keyword arguments pass through to
        :class:`~repro.switch.device.TsnSwitch` (rate, clock, tracer, ...).
        """
        from repro.core.resources import Component  # late: layering
        from repro.switch.device import TsnSwitch

        for template in self.templates:
            if template.component is Component.EGRESS_SCHED and hasattr(
                template, "scheduler_factory"
            ):
                kwargs.setdefault(
                    "scheduler_factory", template.scheduler_factory
                )
        return TsnSwitch(sim, self.config, **kwargs)

    # ----------------------------------------------------------- rtl backend

    def emit_verilog(self, outdir: Union[str, Path]) -> List[Path]:
        """Write the parameterized Verilog of every template to *outdir*."""
        from repro.rtl.emit import emit_switch  # late: layering

        return emit_switch(self, Path(outdir))


class TSNBuilder:
    """The entry point of the developing model."""

    def __init__(self, platform: str = "sim"):
        if platform not in PLATFORMS:
            raise SynthesisError(
                f"unknown platform {platform!r}; expected one of {PLATFORMS}"
            )
        self.platform = platform
        self._templates: List[FunctionTemplate] = default_template_set()
        self._config: Optional[SwitchConfig] = None

    # ------------------------------------------------------------- templates

    @property
    def templates(self) -> List[FunctionTemplate]:
        return list(self._templates)

    def use_templates(self, templates: Sequence[FunctionTemplate]) -> None:
        """Replace the template set (e.g. a custom Egress Sched variant).

        Coverage of all five components is checked at synthesis, not here,
        so sets can be assembled incrementally.
        """
        self._templates = list(templates)

    def replace_template(self, template: FunctionTemplate) -> None:
        """Swap in *template* for whichever one covers the same component."""
        kept = [
            t for t in self._templates if t.component is not template.component
        ]
        if len(kept) == len(self._templates):
            raise SynthesisError(
                f"no existing template covers {template.component.value!r}"
            )
        self._templates = kept + [template]

    # ----------------------------------------------------------- customization

    def customize(self, source: Union[SwitchConfig, CustomizationAPI]) -> None:
        """Inject the resource parameters (a config or a completed API)."""
        if isinstance(source, CustomizationAPI):
            self._config = source.build()
        else:
            source.validate()
            self._config = source

    # --------------------------------------------------------------- synthesis

    def synthesize(self) -> SwitchModel:
        """Validate everything and freeze the switch model."""
        if self._config is None:
            raise SynthesisError(
                "no resource configuration injected; call customize() first"
            )
        check_complete(self._templates)
        for template in self._templates:
            template.validate(self._config)
        return SwitchModel(
            config=self._config,
            templates=list(self._templates),
            platform=self.platform,
        )
