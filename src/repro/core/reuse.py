"""Quantifying template reuse across customizations.

The paper's closing claim is qualitative: "the development effort is
reduced dramatically by reusing the templates ... without reprogramming in
many cases."  This module makes it measurable.  Given two synthesized
switch models (two application scenarios), :func:`reuse_report` compares:

* **parameters** -- which of the seven APIs' values changed;
* **generated RTL** -- per-file identical/changed line counts after
  normalizing the configuration-name banner, i.e. how much Verilog a
  developer would have had to touch without the template model (everything)
  versus with it (nothing -- only injected parameters move).

The reuse benchmark prints these numbers for the paper's three scenarios:
the templates' fixed logic is byte-identical across star/linear/ring, and
only parameter-carrying lines differ.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .builder import SwitchModel
from .errors import SynthesisError

__all__ = ["FileDiff", "ReuseReport", "reuse_report"]

_BANNER_RE = re.compile(r"configuration '.*'")


@dataclass(frozen=True)
class FileDiff:
    """Line-level comparison of one generated file across two scenarios."""

    name: str
    total_lines: int
    changed_lines: int

    @property
    def identical_lines(self) -> int:
        return self.total_lines - self.changed_lines

    @property
    def reuse_ratio(self) -> float:
        return self.identical_lines / self.total_lines if self.total_lines else 1.0


@dataclass
class ReuseReport:
    """How much of scenario A's artifact carries over to scenario B."""

    scenario_a: str
    scenario_b: str
    changed_parameters: Dict[str, Tuple[int, int]] = field(
        default_factory=dict
    )
    file_diffs: List[FileDiff] = field(default_factory=list)

    @property
    def total_lines(self) -> int:
        return sum(d.total_lines for d in self.file_diffs)

    @property
    def changed_lines(self) -> int:
        return sum(d.changed_lines for d in self.file_diffs)

    #: Machine-assembled glue, legitimately regenerated per customization:
    #: the parameter header and the per-port instantiating top level.
    GENERATED_GLUE = ("tsn_params.vh", "tsn_switch_top.v")

    @property
    def reuse_ratio(self) -> float:
        if not self.total_lines:
            return 1.0
        return 1.0 - self.changed_lines / self.total_lines

    @property
    def template_reuse_ratio(self) -> float:
        """Reuse over the five template *bodies* only (glue excluded) --
        the paper's "reuse the templates" claim measured directly."""
        diffs = [d for d in self.file_diffs
                 if d.name not in self.GENERATED_GLUE]
        total = sum(d.total_lines for d in diffs)
        if not total:
            return 1.0
        return 1.0 - sum(d.changed_lines for d in diffs) / total

    @property
    def reprogrammed_nothing(self) -> bool:
        """True when no template body changed beyond parameter-value lines
        -- the paper's "reuse these templates without reprogramming" case.
        The parameter header and the instantiating top level are generated
        glue and excluded by definition."""
        return all(
            diff.changed_lines == 0
            or diff.name in self.GENERATED_GLUE
            or self._only_parameter_lines(diff)
            for diff in self.file_diffs
        )

    _parameter_line_markers = ("parameter", "`define", "localparam")

    def _only_parameter_lines(self, diff: FileDiff) -> bool:
        # populated during construction; see reuse_report
        return diff.name in getattr(self, "_param_only_files", set())


def _normalize(text: str) -> List[str]:
    return [_BANNER_RE.sub("configuration <elided>", line)
            for line in text.splitlines()]


def reuse_report(model_a: SwitchModel, model_b: SwitchModel) -> ReuseReport:
    """Compare two synthesized models' parameters and generated RTL."""
    from repro.rtl.emit import FILE_ORDER

    report = ReuseReport(model_a.config.name, model_b.config.name)
    params_a = {
        k: v
        for template in model_a.template_parameters().values()
        for k, v in template.items()
    }
    params_b = {
        k: v
        for template in model_b.template_parameters().values()
        for k, v in template.items()
    }
    if set(params_a) != set(params_b):
        raise SynthesisError(
            "models expose different parameter sets; are the template sets "
            "compatible?"
        )
    for key, value_a in params_a.items():
        if params_b[key] != value_a:
            report.changed_parameters[key] = (value_a, params_b[key])

    param_only_files = set()
    for name, generator in FILE_ORDER:
        lines_a = _normalize(generator(model_a.config))
        lines_b = _normalize(generator(model_b.config))
        total = max(len(lines_a), len(lines_b))
        changed = sum(
            1
            for left, right in zip(lines_a, lines_b)
            if left != right
        ) + abs(len(lines_a) - len(lines_b))
        diff = FileDiff(name, total, changed)
        report.file_diffs.append(diff)
        changed_pairs = [
            (left, right)
            for left, right in zip(lines_a, lines_b)
            if left != right
        ]
        if len(lines_a) == len(lines_b) and all(
            any(marker in left for marker in
                ReuseReport._parameter_line_markers)
            for left, _ in changed_pairs
        ):
            param_only_files.add(name)
    report._param_only_files = param_only_files  # type: ignore[attr-defined]
    return report
