"""Resource-parameter optimization (paper Section V, "Selection of
resource parameters").

The paper frames parameter selection as "an optimization problem ...
influenced by many factors, including flow features, topologies, lookup
algorithms, flow scheduling algorithms" and leaves concrete algorithms to
future work; the Section III.C guidelines give one feasible point.  This
module implements that future work for the CQF + ITP stack:

* **Decision variables** -- the time-slot size (searched over divisors of
  the scheduling cycle), the queue depth / buffer count (driven by the ITP
  bound at each slot size), and optional switch-table aggregation (one
  forwarding entry per destination instead of per flow -- guideline 1's
  "entries could be aggregated according to the transmission path").

* **Constraints** -- deadline feasibility (Eq. 1: ``(hops+1) * slot`` must
  not exceed any flow's deadline), ITP slot-capacity feasibility, and a
  floor on the slot size (gate granularity).

* **Objective** -- total BRAM (the paper's resource currency).

:func:`optimize` returns the cheapest feasible configuration plus the full
Pareto frontier of (worst-case latency bound, BRAM) trade-offs, so a
deployer can also pick a point with latency headroom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cqf.bounds import cqf_bounds
from repro.cqf.schedule import CqfSchedule, scheduling_cycle_ns
from repro.traffic.flows import FlowSet
from .config import SwitchConfig
from .errors import SchedulingError
from .sizing import SizingResult, derive_config

__all__ = ["CandidatePoint", "OptimizationResult", "optimize"]

#: Gate granularity floor: slots shorter than this leave no room for even
#: one MTU frame plus scheduling slack at 1 Gbps.
MIN_SLOT_NS = 20_000


@dataclass(frozen=True)
class CandidatePoint:
    """One feasible (slot size, configuration) point."""

    slot_ns: int
    config: SwitchConfig
    required_queue_depth: int
    worst_latency_ns: int       # Eq.(1) upper bound at max hops
    total_bram_kb: float

    def dominates(self, other: "CandidatePoint") -> bool:
        """Pareto dominance on (latency bound, BRAM), lower is better."""
        return (
            self.worst_latency_ns <= other.worst_latency_ns
            and self.total_bram_kb <= other.total_bram_kb
            and (
                self.worst_latency_ns < other.worst_latency_ns
                or self.total_bram_kb < other.total_bram_kb
            )
        )


@dataclass
class OptimizationResult:
    """Outcome of one search."""

    best: CandidatePoint
    pareto: List[CandidatePoint]
    rejected_slots: List[int]

    @property
    def best_config(self) -> SwitchConfig:
        return self.best.config


def _slot_candidates(cycle_ns: int, max_hops: int,
                     deadline_ns: Optional[int]) -> List[int]:
    """Divisors of the cycle that could satisfy the deadline."""
    candidates = []
    divisor = 1
    while divisor * divisor <= cycle_ns:
        if cycle_ns % divisor == 0:
            for slot in (divisor, cycle_ns // divisor):
                if slot < MIN_SLOT_NS:
                    continue
                if deadline_ns is not None:
                    if cqf_bounds(max_hops, slot).max_ns > deadline_ns:
                        continue
                candidates.append(slot)
        divisor += 1
    return sorted(set(candidates))


def optimize(
    topology,
    flows: FlowSet,
    max_hops: Optional[int] = None,
    aggregate_switch_entries: bool = False,
    queue_depth_margin: float = 1.5,
    rate_bps: int = 10**9,
    name: str = "optimized",
) -> OptimizationResult:
    """Search slot sizes for the cheapest deadline-feasible configuration.

    *topology* supplies ``max_enabled_ports`` and -- unless *max_hops* is
    given -- the longest talker-to-listener path (the hop count behind the
    Eq. 1 deadline check).  The tightest flow deadline constrains every
    candidate; flows without deadlines don't constrain.
    """
    ts_flows = flows.ts_flows
    if not ts_flows:
        raise SchedulingError("optimization needs at least one TS flow")
    if max_hops is None:
        max_hops = max(
            topology.hops(flow.src, flow.dst) for flow in ts_flows
        )
    deadlines = [f.deadline_ns for f in ts_flows if f.deadline_ns]
    deadline = min(deadlines) if deadlines else None
    cycle_ns = scheduling_cycle_ns(flows.ts_periods())

    candidates: List[CandidatePoint] = []
    rejected: List[int] = []
    for slot_ns in _slot_candidates(cycle_ns, max_hops, deadline):
        try:
            sizing: SizingResult = derive_config(
                topology,
                flows,
                slot_ns,
                name=f"{name}@{slot_ns}ns",
                queue_depth_margin=queue_depth_margin,
                rate_bps=rate_bps,
            )
        except SchedulingError:
            rejected.append(slot_ns)  # ITP infeasible at this slot size
            continue
        config = sizing.config
        if aggregate_switch_entries:
            destinations = len({f.dst for f in flows})
            config = config.with_updates(
                unicast_size=max(1, destinations)
            )
        candidates.append(
            CandidatePoint(
                slot_ns=slot_ns,
                config=config,
                required_queue_depth=sizing.required_queue_depth,
                worst_latency_ns=cqf_bounds(max_hops, slot_ns).max_ns,
                total_bram_kb=config.total_bram_kb,
            )
        )
    if not candidates:
        raise SchedulingError(
            f"no slot size satisfies the {deadline}ns deadline over "
            f"{max_hops} hops with a feasible ITP plan"
        )
    best = min(
        candidates, key=lambda c: (c.total_bram_kb, c.worst_latency_ns)
    )
    pareto = [
        point
        for point in candidates
        if not any(other.dominates(point) for other in candidates)
    ]
    pareto.sort(key=lambda c: c.worst_latency_ns)
    return OptimizationResult(best=best, pareto=pareto,
                              rejected_slots=rejected)
