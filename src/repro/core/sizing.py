"""Resource-sizing guidelines (paper Section III.C, second stage).

``derive_config`` turns application features -- a topology and a flow set --
into the resource parameters the customization APIs inject, following the
paper's five guidelines:

1. **Switch/Classification/Meter tables** (shared): one entry per
   application flow in the worst case.
2. **In/Out gate tables** (per port): one entry per time slot in the
   scheduling cycle (LCM of flow periods); CQF's cyclic two-queue operation
   compresses this to exactly 2.
3. **CBS map/CBS tables** (per port): one entry per RC queue.
4. **Queues/buffers**: each queue must hold every packet arriving in one
   slot -- obtained from the ITP plan's worst per-slot load -- and the
   per-port buffer pool backs all queues at full depth
   (``buffer_num = queue_depth * queue_num``, which is exactly how the
   paper's 16x8 -> 128 and 12x8 -> 96 figures decompose).
5. **Enabled ports**: the topology's per-switch maximum.

The derived depth carries an engineering margin: the ITP bound is exact for
the planned TS traffic but leaves no room for phase error, so the guideline
scales it by ``queue_depth_margin`` (default 1.5x) and rounds up to a
multiple of 4 descriptors.  With the paper's workload (1024 flows of period
10 ms on 62.5 us slots -> 7 frames/slot worst case) this yields depth 12 and
96 buffers -- the paper's Table I Case 2 / Table III customized column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cqf.itp import ItpPlan
from repro.cqf.schedule import CqfSchedule, scheduling_cycle_ns
from repro.traffic.flows import FlowSet
from .config import SwitchConfig
from .errors import SchedulingError

__all__ = [
    "SizingResult",
    "ObservedDemand",
    "derive_config",
    "sufficient_config",
]


@dataclass(frozen=True)
class SizingResult:
    """A derived configuration plus the evidence behind it."""

    config: SwitchConfig
    schedule: CqfSchedule
    itp_plan: Optional[ItpPlan]
    required_queue_depth: int
    #: The scheduling-layer plan behind guideline 4 (a
    #: :class:`~repro.sched.SchedulePlan`, or a
    #: :class:`~repro.sched.MultiSchedulePlan` under the multi_cqf shaper,
    #: where ``itp_plan`` has no faithful single-schedule projection and
    #: is ``None``).
    sched_plan: Optional[object] = None

    @property
    def depth_margin_frames(self) -> int:
        """Slack descriptors between requirement and configured depth."""
        return self.config.queue_depth - self.required_queue_depth


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


@dataclass(frozen=True)
class ObservedDemand:
    """Peak demand a run actually placed on each sized structure.

    The inverse of :func:`derive_config`'s inputs: where sizing predicts
    demand from application features, this records what the dataplane
    measured -- queue/pool high-water marks and table fills -- so
    :func:`sufficient_config` can answer "what is the cheapest switch that
    would have sufficed for this run?".
    """

    queue_depth: int = 0       # worst per-queue occupancy (frames)
    buffer_slots: int = 0      # worst buffer-pool occupancy (slots)
    unicast: int = 0           # installed forwarding entries
    multicast: int = 0
    classification: int = 0
    meters: int = 0            # installed meter entries
    gate_entries: int = 0      # longest programmed GCL
    cbs_map: int = 0
    cbs: int = 0


def sufficient_config(
    base: SwitchConfig,
    observed: ObservedDemand,
    queue_depth_margin: float = 1.5,
    depth_round_to: int = 4,
) -> SwitchConfig:
    """The cheapest configuration that would have carried *observed* demand.

    Applies the same engineering-margin policy :func:`derive_config` uses
    for queue depth (scale the requirement by ``queue_depth_margin``, round
    up to a multiple of ``depth_round_to``) and the paper's buffer
    decomposition ``buffer_num = queue_depth * queue_num``, so a sufficient
    config for the Table I Case 2 workload (7 frames/slot observed)
    reproduces the published 12 x 8 -> 96 figures.  Tables are sized to
    their observed fill (minimum 1 entry -- a zero-entry BRAM does not
    exist); a multicast table the base config omitted stays omitted.
    """
    required_depth = max(1, observed.queue_depth)
    depth = _round_up(
        max(required_depth, math.ceil(required_depth * queue_depth_margin)),
        depth_round_to,
    )
    # The pool must back every queue at the margined depth *and* the worst
    # pool occupancy actually seen (which can momentarily exceed the sum of
    # queue peaks while a frame is on the wire).
    buffer_num = max(depth * base.queue_num, observed.buffer_slots)
    config = base.with_updates(
        name=f"{base.name}-sufficient",
        unicast_size=max(1, observed.unicast),
        multicast_size=(
            max(0, observed.multicast) if base.multicast_size > 0 else 0
        ),
        class_size=max(1, observed.classification),
        meter_size=max(1, observed.meters),
        gate_size=max(1, observed.gate_entries),
        cbs_map_size=min(base.queue_num, max(1, observed.cbs_map)),
        cbs_size=max(1, observed.cbs),
        queue_depth=depth,
        buffer_num=buffer_num,
    )
    config.validate()
    return config


def derive_config(
    topology,
    flows: FlowSet,
    slot_ns: int,
    name: str = "derived",
    gate_mechanism: str = "cqf",
    rc_queue_num: int = 3,
    queue_num: int = 8,
    queue_depth_margin: float = 1.5,
    depth_round_to: int = 4,
    rate_bps: int = 10**9,
    max_enabled_ports: Optional[int] = None,
    replication_factor: int = 1,
    sched: Optional["SchedPolicy"] = None,
) -> SizingResult:
    """Apply the five guidelines to one scenario.

    *topology* is a :class:`~repro.network.topology.TopologySpec` (typed
    loosely to keep :mod:`repro.core` import-light); pass
    ``max_enabled_ports`` explicitly to size without a topology object.

    ``gate_mechanism`` selects guideline 2's arithmetic: ``"cqf"`` gives the
    two-entry gate tables of the evaluation; ``"qbv"`` sizes for a general
    802.1Qbv schedule with one entry per slot of the scheduling cycle.

    ``sched`` is the flow-scheduling policy (backend, shaper, objective)
    behind guideline 4 -- the default reproduces the historic greedy ITP
    figures byte for byte.  The shaper feeds back into guideline 2: CSQF's
    three-queue rotation needs 3 gate entries, Multi-CQF one entry per
    base slot of its merged hyper-cycle.

    ``replication_factor`` scales the per-flow table entries for redundant
    transmission: FRER (802.1CB) sends each TS flow as two member streams,
    each needing its own classification/forwarding/meter entry, so pass 2.
    """
    from repro.sched import SchedPolicy, plan_flows
    from repro.sched.problem import SchedulePlan

    if gate_mechanism not in ("cqf", "qbv"):
        raise SchedulingError(
            f"unknown gate mechanism {gate_mechanism!r}; use 'cqf' or 'qbv'"
        )
    sched = sched or SchedPolicy()
    if gate_mechanism == "qbv" and sched.shaper != "cqf":
        raise SchedulingError(
            f"shaper {sched.shaper!r} requires gate_mechanism='cqf'"
        )
    if max_enabled_ports is None:
        max_enabled_ports = topology.max_enabled_ports
    if replication_factor < 1:
        raise SchedulingError(
            f"replication factor must be >= 1, got {replication_factor}"
        )
    flow_count = len(flows) * replication_factor
    if flow_count == 0:
        raise SchedulingError("cannot size a switch for zero flows")

    # Guideline 2: scheduling cycle and gate-table size.
    periods = flows.ts_periods()
    if not periods:
        raise SchedulingError("sizing needs at least one TS flow")
    cycle_ns = scheduling_cycle_ns(periods)
    schedule = CqfSchedule.for_flows(periods, slot_ns)
    if gate_mechanism != "cqf":
        gate_size = schedule.slot_count
    elif sched.shaper == "csqf":
        gate_size = 3
    elif sched.shaper == "multi_cqf":
        from repro.cqf.gcl_gen import multi_cqf_gate_entry_count

        gate_size = multi_cqf_gate_entry_count(
            slot_ns, sched.slot2_ns(slot_ns)
        )
    else:
        gate_size = 2

    # Guideline 4: queue depth from the plan's worst per-slot load.
    plan = plan_flows(list(flows), slot_ns, rate_bps, policy=sched)
    plan.raise_if_infeasible()
    required_depth = max(1, plan.required_queue_depth)
    depth = _round_up(
        max(required_depth, math.ceil(required_depth * queue_depth_margin)),
        depth_round_to,
    )
    buffer_num = depth * queue_num

    config = SwitchConfig(
        name=name,
        port_num=max_enabled_ports,
        # Guideline 1: shared tables sized to the flow count.
        unicast_size=flow_count,
        multicast_size=0,
        class_size=flow_count,
        meter_size=flow_count,
        gate_size=gate_size,
        queue_num=queue_num,
        # Guideline 3: one CBS map/table entry per RC queue.
        cbs_map_size=rc_queue_num,
        cbs_size=rc_queue_num,
        queue_depth=depth,
        buffer_num=buffer_num,
    )
    config.validate()
    return SizingResult(
        config=config,
        schedule=schedule,
        itp_plan=(
            plan.to_itp_plan() if isinstance(plan, SchedulePlan) else None
        ),
        required_queue_depth=required_depth,
        sched_plan=plan,
    )
