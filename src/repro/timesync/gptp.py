"""gPTP (IEEE 802.1AS) time synchronization.

Implements the Time Sync template's three submodules (paper Fig. 5) as a
simulation process:

* **clock collection** -- two-step Sync/Follow_Up exchanges timestamp the
  master's transmit (t1) and the slave's receive (t2), plus periodic
  peer-delay measurement (Pdelay_Req t3/t4, Pdelay_Resp t5/t6);
* **correction calculation** -- mean path delay
  ``((t6 - t3) - (t5 - t4)) / 2``, offset ``t2 - t1 - path_delay``, and the
  neighbor rate ratio from successive Sync pairs;
* **clock correction** -- a :class:`~repro.timesync.servo.PiServo`
  step/slew discipline on the slave's :class:`~repro.sim.clock.LocalClock`.

Every timestamp is quantized to the PHY timestamping granularity (8 ns for
the prototype's 125 MHz FPGA clock), which is what bounds the achievable
precision; the reproduction's acceptance test mirrors the paper's
"synchronization precision on FPGA is less than 50 ns".

Multi-hop domains use the boundary-clock formulation: each node syncs to
its tree parent and serves its own children.  802.1AS proper forwards
corrected Sync with accumulated rate ratios; for the offset budget at the
paper's 3-6 hop scale the boundary model is equivalent and much clearer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from .servo import PiServo

__all__ = ["GptpConfig", "GptpNode", "SyncDomain"]


@dataclass(frozen=True)
class GptpConfig:
    """Protocol timing knobs."""

    sync_interval_ns: int = 31_250_000       # 2^-5 s, gPTP's default rate
    pdelay_interval_ns: int = 125_000_000
    timestamp_granularity_ns: int = 8        # 125 MHz PHY timestamping
    turnaround_ns: int = 1_000               # Pdelay responder latency


class GptpNode:
    """One clock in the sync tree."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        clock: LocalClock,
        config: GptpConfig = GptpConfig(),
    ) -> None:
        self._sim = sim
        self.name = name
        self.clock = clock
        self.config = config
        self.parent: Optional["GptpNode"] = None
        self.link_delay_ns = 0          # true one-way delay to parent
        self.children: List["GptpNode"] = []
        self.servo = PiServo(clock)
        self.path_delay_est_ns: Optional[int] = None
        self._last_sync: Optional[Tuple[int, int]] = None  # (t1, t2)
        self.sync_count = 0

    # -------------------------------------------------------------- helpers

    def _stamp(self, clock: LocalClock) -> int:
        gran = self.config.timestamp_granularity_ns
        return clock.now() // gran * gran

    @property
    def is_grandmaster(self) -> bool:
        return self.parent is None

    def offset_from(self, reference: "GptpNode") -> int:
        """Current true offset vs *reference* (ns, observable in sim only)."""
        return self.clock.now() - reference.clock.now()

    # --------------------------------------------------------- peer delay

    def measure_path_delay(self) -> None:
        """One Pdelay_Req/Resp exchange with the parent."""
        if self.parent is None:
            return
        t3 = self._stamp(self.clock)
        # Request propagates to the parent...
        def at_parent() -> None:
            t4 = self._stamp(self.parent.clock)
            def respond() -> None:
                t5 = self._stamp(self.parent.clock)
                def back_at_child() -> None:
                    t6 = self._stamp(self.clock)
                    turn = t5 - t4
                    self.path_delay_est_ns = max(0, ((t6 - t3) - turn) // 2)
                self._sim.post(self.link_delay_ns, back_at_child)
            self._sim.post(self.config.turnaround_ns, respond)
        self._sim.post(self.link_delay_ns, at_parent)

    # -------------------------------------------------------------- syncing

    def send_sync_to_children(self) -> None:
        """Master role: one Sync/Follow_Up toward every child."""
        for child in self.children:
            t1 = self._stamp(self.clock)
            self._sim.post(
                child.link_delay_ns, lambda c=child, t=t1: c._on_sync(t)
            )

    def _on_sync(self, t1: int) -> None:
        t2 = self._stamp(self.clock)
        self.sync_count += 1
        if self.path_delay_est_ns is None:
            # Cannot correct yet; the first pdelay exchange is in flight.
            self._last_sync = (t1, t2)
            return
        offset = t2 - t1 - self.path_delay_est_ns
        rate_ratio: Optional[float] = None
        if self._last_sync is not None:
            dt1 = t1 - self._last_sync[0]
            dt2 = t2 - self._last_sync[1]
            if dt2 > 0 and dt1 > 0:
                rate_ratio = dt1 / dt2
        self.servo.observe(offset, rate_ratio)
        self._last_sync = (t1, self._stamp(self.clock))


class SyncDomain:
    """A gPTP tree over a set of named clocks.

    >>> domain = SyncDomain(sim, config=GptpConfig())      # doctest: +SKIP
    >>> gm = domain.add_node("sw0", clock0)
    >>> domain.add_node("sw1", clock1, parent="sw0", link_delay_ns=500)
    >>> domain.start()
    >>> sim.run(until=2_000_000_000)
    >>> domain.max_abs_offset_ns() < 50

    **Grandmaster failover (BMCA).** 802.1AS elects the grandmaster with
    the Best Master Clock Algorithm and re-elects on announce timeout.
    The domain implements the election outcome: give nodes priorities
    (lower wins, like BMCA's priority1), call :meth:`fail_node` on the
    acting grandmaster, and after ``announce timeout`` the best surviving
    node takes over, the sync tree re-roots along the recorded physical
    adjacency, and the slaves' servos re-lock to the new master.
    """

    def __init__(self, sim: Simulator, config: GptpConfig = GptpConfig()):
        self._sim = sim
        self.config = config
        self.nodes: Dict[str, GptpNode] = {}
        self._grandmaster: Optional[GptpNode] = None
        self._started = False
        self.priorities: Dict[str, int] = {}
        self._adjacency: Dict[str, Dict[str, int]] = {}
        self._failed: set = set()
        #: Announce timeout: a dead grandmaster is detected after this many
        #: sync intervals without announces (802.1AS default is 3).
        self.announce_timeout_intervals = 3
        self._missed_announces = 0
        self.elections = 0
        #: Recovery observability (read by the fault-injection report):
        #: sim timestamps of grandmaster failures and of the elections that
        #: healed them.
        self.gm_failure_times_ns: List[int] = []
        self.election_times_ns: List[int] = []

    def add_node(
        self,
        name: str,
        clock: LocalClock,
        parent: Optional[str] = None,
        link_delay_ns: int = 500,
        priority: Optional[int] = None,
    ) -> GptpNode:
        """Add a clock; the first parent-less node is the acting grandmaster.

        *priority* is the BMCA rank for failover elections (lower wins;
        defaults to the insertion order, so the initial grandmaster is also
        the best-ranked node).
        """
        if name in self.nodes:
            raise ConfigurationError(f"duplicate gPTP node {name!r}")
        node = GptpNode(self._sim, name, clock, self.config)
        if parent is None:
            if self._grandmaster is not None:
                raise ConfigurationError(
                    f"{name!r}: grandmaster already is "
                    f"{self._grandmaster.name!r}"
                )
            self._grandmaster = node
        else:
            if parent not in self.nodes:
                raise ConfigurationError(f"unknown parent {parent!r}")
            node.parent = self.nodes[parent]
            node.link_delay_ns = link_delay_ns
            self.nodes[parent].children.append(node)
            self._adjacency.setdefault(parent, {})[name] = link_delay_ns
            self._adjacency.setdefault(name, {})[parent] = link_delay_ns
        self.priorities[name] = (
            priority if priority is not None else len(self.nodes)
        )
        self.nodes[name] = node
        return node

    def add_link(self, a: str, b: str, link_delay_ns: int = 500) -> None:
        """Record extra physical adjacency (a re-rooting path for BMCA)."""
        for name in (a, b):
            if name not in self.nodes:
                raise ConfigurationError(f"unknown gPTP node {name!r}")
        self._adjacency.setdefault(a, {})[b] = link_delay_ns
        self._adjacency.setdefault(b, {})[a] = link_delay_ns

    @property
    def grandmaster(self) -> GptpNode:
        if self._grandmaster is None:
            raise ConfigurationError("sync domain has no grandmaster")
        return self._grandmaster

    # -------------------------------------------------------------- running

    def start(self) -> None:
        """Arm the periodic pdelay and sync processes."""
        if self._started:
            raise ConfigurationError("sync domain already started")
        if self._grandmaster is None:
            raise ConfigurationError("sync domain has no grandmaster")
        self._started = True
        # Every node runs the pdelay process (a no-op while it has no
        # parent) so re-rooted slaves keep measuring after a failover.
        for node in self.nodes.values():
            if node.parent is not None:
                node.measure_path_delay()
            self._schedule_pdelay(node)
        self._schedule_sync()

    def _schedule_pdelay(self, node: GptpNode) -> None:
        def tick() -> None:
            node.measure_path_delay()
            self._sim.post(self.config.pdelay_interval_ns, tick)
        self._sim.post(self.config.pdelay_interval_ns, tick)

    def _schedule_sync(self) -> None:
        def tick() -> None:
            # Announce supervision: a dead grandmaster stops announcing;
            # after the timeout the survivors elect a new one.
            assert self._grandmaster is not None
            if self._grandmaster.name in self._failed:
                self._missed_announces += 1
                if self._missed_announces >= self.announce_timeout_intervals:
                    self._elect_new_grandmaster()
            else:
                self._missed_announces = 0
            # Boundary-clock cascade: every non-leaf node masters its
            # children off its own (already disciplined) clock.
            for node in self.nodes.values():
                if node.name in self._failed:
                    continue
                node.send_sync_to_children()
            self._sim.post(self.config.sync_interval_ns, tick)
        self._sim.post(self.config.sync_interval_ns, tick)

    # ------------------------------------------------------------- failover

    def fail_node(self, name: str) -> None:
        """Kill a node's protocol engine (its clock keeps free-running)."""
        if name not in self.nodes:
            raise ConfigurationError(f"unknown gPTP node {name!r}")
        if name in self._failed:
            return
        self._failed.add(name)
        if self._grandmaster is not None and self._grandmaster.name == name:
            self.gm_failure_times_ns.append(self._sim.now)

    def restore_node(self, name: str) -> None:
        """Bring a failed node's protocol engine back (as a slave).

        The node rejoins the running tree under its best live neighbor --
        a local graft, not a full re-root, so every *other* node keeps its
        parent, path-delay estimate and servo state undisturbed.  A node
        restored while still wired as grandmaster (it failed but the
        announce timeout has not elapsed yet) simply resumes announcing.
        """
        if name not in self.nodes:
            raise ConfigurationError(f"unknown gPTP node {name!r}")
        if name not in self._failed:
            return
        self._failed.discard(name)
        node = self.nodes[name]
        if self._grandmaster is not None and self._grandmaster.name == name:
            return  # never deposed: it just resumes its grandmaster role
        if node.parent is not None and node.parent.name not in self._failed:
            return  # old attachment is still live
        # Graft under the best (BMCA-ranked) live, tree-connected neighbor.
        candidates = [
            neighbor
            for neighbor in self._adjacency.get(name, {})
            if neighbor not in self._failed
            and self._in_tree(self.nodes[neighbor])
        ]
        if not candidates:
            return  # isolated: keeps free-running until topology heals
        parent_name = min(candidates, key=lambda n: (self.priorities[n], n))
        if node.parent is not None and node in node.parent.children:
            node.parent.children.remove(node)
        parent = self.nodes[parent_name]
        node.parent = parent
        node.link_delay_ns = self._adjacency[name][parent_name]
        node.path_delay_est_ns = None
        node._last_sync = None
        if node not in parent.children:
            parent.children.append(node)
        node.measure_path_delay()

    def _in_tree(self, node: GptpNode) -> bool:
        """True when *node* has a live path up to the acting grandmaster."""
        seen = set()
        while node is not None:
            if node.name in seen or node.name in self._failed:
                return False
            seen.add(node.name)
            if node is self._grandmaster:
                return True
            node = node.parent
        return False

    def _elect_new_grandmaster(self) -> None:
        """BMCA outcome: best surviving priority wins; tree re-roots."""
        survivors = [n for n in self.nodes if n not in self._failed]
        if not survivors:
            raise ConfigurationError("every gPTP node has failed")
        winner = min(survivors, key=lambda n: (self.priorities[n], n))
        self._reroot(winner)
        self.elections += 1
        self.election_times_ns.append(self._sim.now)
        self._missed_announces = 0

    def _reroot(self, new_root: str) -> None:
        """Rebuild the parent/child tree by BFS from *new_root* over the
        recorded adjacency, skipping failed nodes."""
        for node in self.nodes.values():
            node.parent = None
            node.children = []
        root = self.nodes[new_root]
        self._grandmaster = root
        visited = {new_root}
        frontier = [new_root]
        while frontier:
            current = frontier.pop(0)
            for neighbor, delay in self._adjacency.get(current, {}).items():
                if neighbor in visited or neighbor in self._failed:
                    continue
                visited.add(neighbor)
                child = self.nodes[neighbor]
                child.parent = self.nodes[current]
                child.link_delay_ns = delay
                # the path delay to the new parent must be re-measured; the
                # periodic pdelay process keeps running, but seed it now so
                # the next sync can correct immediately
                child.path_delay_est_ns = None
                child._last_sync = None
                self.nodes[current].children.append(child)
                child.measure_path_delay()
                frontier.append(neighbor)

    # ------------------------------------------------------------- queries

    def offsets_ns(self) -> Dict[str, int]:
        """True offset of every node vs the grandmaster, right now."""
        gm = self.grandmaster
        return {
            name: node.offset_from(gm) for name, node in self.nodes.items()
        }

    def max_abs_offset_ns(self) -> int:
        return max(abs(v) for v in self.offsets_ns().values())

    def failover_latencies_ns(self) -> List[int]:
        """Detection+election latency of each healed grandmaster failure.

        Pairs every recorded GM failure with the first election at or after
        it; failures not yet healed contribute nothing.  The announce
        timeout dominates: with gPTP defaults this is ~3 sync intervals.
        """
        latencies: List[int] = []
        elections = list(self.election_times_ns)
        for failed_at in self.gm_failure_times_ns:
            healed = [t for t in elections if t >= failed_at]
            if healed:
                latencies.append(healed[0] - failed_at)
                elections.remove(healed[0])
        return latencies

    def all_locked(self) -> bool:
        return all(
            node.servo.locked
            for node in self.nodes.values()
            if node.parent is not None
        )
