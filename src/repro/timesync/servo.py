"""Clock servo: disciplines a local clock from measured offsets.

A classic PI controller plus a step stage: the first sample (or any sample
beyond ``step_threshold_ns``) *steps* the clock phase -- matching how PTP
stacks handle startup and gross errors -- while small offsets are *slewed*
by adjusting the clock rate, keeping local time monotonic for the gate
engines that consume it.

Syntonization: when the caller also supplies the measured *rate ratio*
(master ticks per disciplined-local tick, from successive Sync timestamp
pairs), the servo folds it into the rate correction so the oscillator's
frequency error is cancelled directly and the PI loop only chases the
residual phase error -- this is what gets the steady-state offset under the
paper's 50 ns budget despite tens of ppm of drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.clock import LocalClock

__all__ = ["PiServo"]


@dataclass
class PiServo:
    """Proportional-integral clock discipline.

    ``kp``/``ki`` are ppm of rate correction per microsecond of offset --
    tuned conservatively so the loop stays stable at the 8 ns timestamp
    granularity of a 125 MHz FPGA PHY.
    """

    clock: LocalClock
    kp: float = 0.7
    ki: float = 0.3
    step_threshold_ns: int = 10_000
    #: Anti-windup clamp on the integral accumulator (microseconds of
    #: offset-sum).  During a grandmaster outage the last pre-outage
    #: offsets would otherwise keep integrating into a standing rate bias
    #: that slews the clock far off budget on reacquisition.
    integral_limit_us: float = 50.0
    _integral_us: float = 0.0
    _synced_once: bool = False
    offsets_seen: List[int] = field(default_factory=list)

    def observe(self, offset_ns: int, rate_ratio: Optional[float] = None) -> None:
        """Feed one measured offset (local minus master, ns).

        *rate_ratio* is master-elapsed over local-elapsed between the last
        two samples, measured against the *disciplined* local clock.
        """
        self.offsets_seen.append(offset_ns)
        syntonize_ppm = 0.0
        if rate_ratio is not None:
            # Make the disciplined rate track the master's: the new total
            # rate must be (current effective rate) * rate_ratio.
            effective = float(self.clock.rate)
            syntonize_ppm = effective * (rate_ratio - 1.0) * 1e6
        if not self._synced_once or abs(offset_ns) > self.step_threshold_ns:
            self.clock.step(-offset_ns)
            self._synced_once = True
            self._integral_us = 0.0
            if rate_ratio is not None:
                self.clock.adjust_rate(
                    self.clock.rate_correction_ppm + syntonize_ppm
                )
            return
        offset_us = offset_ns / 1000.0
        self._integral_us += offset_us
        limit = self.integral_limit_us
        if self._integral_us > limit:
            self._integral_us = limit
        elif self._integral_us < -limit:
            self._integral_us = -limit
        pi_ppm = -(self.kp * offset_us + self.ki * self._integral_us)
        self.clock.adjust_rate(
            self.clock.rate_correction_ppm + syntonize_ppm + pi_ppm
        )
        # The PI term is a one-interval nudge, not a standing bias: fold it
        # back out of the integral path by treating it as consumed.
        self._integral_us *= 0.5

    @property
    def locked(self) -> bool:
        """Heuristic lock indicator: last three offsets within threshold."""
        tail = self.offsets_seen[-3:]
        return len(tail) == 3 and all(
            abs(x) <= self.step_threshold_ns for x in tail
        )
