"""TSN-Builder reproduction: template-based customization of
resource-efficient Time-Sensitive Networking switches (Yan et al., DAC 2020).

The public API groups into four layers:

* **Customization model** (the paper's contribution) --
  :class:`CustomizationAPI` (the seven Table II calls),
  :class:`SwitchConfig`, :class:`TSNBuilder` and the five function
  templates, the sizing guidelines in :mod:`repro.core.sizing`, and the
  BRAM cost model in :mod:`repro.core.bram`.

* **Dataplane substrate** -- :class:`TsnSwitch` and its components
  (:mod:`repro.switch`), driven by the event kernel in :mod:`repro.sim`.

* **Scenario layer** -- topologies, hosts, links, the TSN analyzer and the
  :class:`Testbed` orchestrator (:mod:`repro.network`), traffic profiles
  (:mod:`repro.traffic`), CQF slotting/bounds (:mod:`repro.cqf`), and the
  pluggable flow-scheduling layer (:mod:`repro.sched`: greedy / exact /
  anneal / unplanned backends behind :func:`make_scheduler`, with CQF,
  CSQF and Multi-CQF shaper modes).

* **Outputs** -- resource reports (:mod:`repro.analysis.report`), the
  observability layer (:mod:`repro.obs`: :class:`MetricsRegistry`,
  wall-clock profiling, Chrome-trace export), and the Verilog generator
  backend (:mod:`repro.rtl`).

Quickstart::

    from repro import CustomizationAPI, Testbed, ring_topology
    from repro.traffic.iec60802 import production_cell_flows

    api = CustomizationAPI("ring-node")
    api.set_switch_tbl(1024, 0)
    api.set_class_tbl(1024)
    api.set_meter_tbl(1024)
    api.set_gate_tbl(2, 8, 1)
    api.set_cbs_tbl(3, 3, 1)
    api.set_queues(12, 8, 1)
    api.set_buffers(96, 1)
    config = api.build()

    topo = ring_topology()
    flows = production_cell_flows(["talker0"], "listener", flow_count=64)
    result = Testbed(topo, config, flows).run(duration_ns=50_000_000)
    print(result.ts_summary)
"""

from .campaign import Campaign, SweepSpec
from .core.api import CustomizationAPI, SwitchBuilder
from .core.bram import allocate as allocate_bram
from .core.config import EntryWidths, SwitchConfig
from .core.errors import (
    CapacityError,
    ConfigurationError,
    IncompleteCustomizationError,
    SchedulingError,
    SpecValidationError,
    SimulationError,
    SynthesisError,
    TopologyError,
    TsnBuilderError,
)
from .core.presets import (
    bcm53154_config,
    customized_config,
    linear_config,
    ring_config,
    star_config,
)
from .core.optimizer import optimize
from .core.resources import ResourceReport
from .core.sizing import derive_config
from .core.validation import check_deployment
from .cqf.bounds import CqfBounds, cqf_bounds
from .cqf.schedule import CqfSchedule
from .faults import FaultInjector, FaultPlan, FaultReport
from .network.scenario import ScenarioSpec
from .sched import (
    SchedPolicy,
    SchedulePlan,
    SchedulingProblem,
    Scheduler,
    available_backends,
    make_scheduler,
    plan_flows,
)
from .obs.chrome_trace import write_chrome_trace
from .obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from .obs.profiler import WallClockProfiler
from .network.testbed import ScenarioResult, Testbed
from .network.topology import (
    TopologySpec,
    dual_path_topology,
    frer_ring_topology,
    linear_topology,
    ring_topology,
    star_topology,
)
from .switch.device import TsnSwitch
from .traffic.flows import FlowSet, FlowSpec, TrafficClass

__version__ = "0.1.0"

__all__ = [
    "CustomizationAPI",
    "SwitchBuilder",
    "Campaign",
    "SweepSpec",
    "SwitchConfig",
    "EntryWidths",
    "ResourceReport",
    "TsnBuilderError",
    "ConfigurationError",
    "IncompleteCustomizationError",
    "SpecValidationError",
    "CapacityError",
    "SchedulingError",
    "SimulationError",
    "SynthesisError",
    "TopologyError",
    "allocate_bram",
    "bcm53154_config",
    "customized_config",
    "star_config",
    "linear_config",
    "ring_config",
    "CqfBounds",
    "cqf_bounds",
    "CqfSchedule",
    "TsnSwitch",
    "FlowSpec",
    "FlowSet",
    "TrafficClass",
    "TopologySpec",
    "ring_topology",
    "linear_topology",
    "star_topology",
    "dual_path_topology",
    "frer_ring_topology",
    "FaultPlan",
    "FaultInjector",
    "FaultReport",
    "Testbed",
    "ScenarioResult",
    "ScenarioSpec",
    "derive_config",
    "optimize",
    "check_deployment",
    "Scheduler",
    "SchedPolicy",
    "SchedulePlan",
    "SchedulingProblem",
    "available_backends",
    "make_scheduler",
    "plan_flows",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "WallClockProfiler",
    "write_chrome_trace",
    "__version__",
]
