"""Writing the generated RTL bundle to disk.

:func:`emit_switch` is the ``rtl`` platform backend of
:class:`~repro.core.builder.SwitchModel`: it writes the parameter header,
one Verilog file per function template, the top level, a file list for the
synthesis tool, and a generation manifest recording the configuration and
the predicted BRAM budget (so the RTL bundle is self-describing).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.core.errors import SynthesisError
from . import modules

__all__ = ["emit_switch", "FILE_ORDER"]

#: Emission order: parameters first, leaf templates, then the top.
FILE_ORDER = (
    ("tsn_params.vh", modules.params_header),
    ("time_sync.v", modules.time_sync_v),
    ("packet_switch.v", modules.packet_switch_v),
    ("ingress_filter.v", modules.ingress_filter_v),
    ("gate_ctrl.v", modules.gate_ctrl_v),
    ("egress_sched.v", modules.egress_sched_v),
    ("tsn_switch_top.v", modules.top_v),
)


def emit_switch(model, outdir: Path, lint: bool = True) -> List[Path]:
    """Write the full RTL bundle for *model* into *outdir*.

    With ``lint`` (the default) the bundle is checked by
    :func:`repro.rtl.lint.lint_bundle` after writing and structural
    violations raise :class:`SynthesisError` -- the generator must never
    hand the synthesis tool broken RTL.  Returns the written paths
    (sources + ``filelist.f`` + manifest).
    """
    config = model.config
    config.validate()
    outdir = Path(outdir)
    try:
        outdir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise SynthesisError(f"cannot create RTL output dir {outdir}: {exc}")
    written: List[Path] = []
    for filename, generator in FILE_ORDER:
        path = outdir / filename
        path.write_text(generator(config))
        written.append(path)

    filelist = outdir / "filelist.f"
    filelist.write_text(
        "\n".join(name for name, _ in FILE_ORDER if name.endswith(".v")) + "\n"
    )
    written.append(filelist)

    # Control-plane artifacts: the CSR map the embedded CPU programs
    # tables through (paper Section IV.A).
    from .csr import build_csr_map, emit_c_header, emit_markdown

    csr = build_csr_map(config)
    header = outdir / "tsn_csr.h"
    header.write_text(emit_c_header(csr))
    written.append(header)
    csr_doc = outdir / "csr_map.md"
    csr_doc.write_text(emit_markdown(csr))
    written.append(csr_doc)

    report = model.resource_report()
    manifest = outdir / "manifest.json"
    manifest.write_text(
        json.dumps(
            {
                "generator": "repro (TSN-Builder reproduction)",
                "config": config.to_dict(),
                "predicted_bram_kb": report.total_kb,
                "predicted_bram_rows": {
                    row.resource: row.kb for row in report.rows
                },
                "files": [name for name, _ in FILE_ORDER],
            },
            indent=2,
            sort_keys=True,
        )
    )
    written.append(manifest)

    if lint:
        from .lint import lint_bundle  # local: avoid import cost on hot paths

        violations = lint_bundle(written)
        if violations:
            raise SynthesisError(
                "generated RTL failed structural lint: "
                + "; ".join(violations)
            )
    return written
