"""Structural lint for the generated Verilog bundle.

The original flow verified the templates with RTL simulation; without a
Verilog simulator in the loop, this module provides the structural subset
of those checks so the generator cannot silently emit broken RTL:

* balanced ``module``/``endmodule``, ``begin``/``end``,
  ``generate``/``endgenerate`` and parentheses;
* every instantiated module exists in the bundle, and every named port in
  an instantiation exists on the instantiated module's port list;
* every ``include``d file is present;
* parameters referenced in a module body are declared.

It is a *linter*, not a simulator: legality of expressions is out of
scope.  `lint_bundle` returns a list of human-readable violations (empty =
clean), and the test suite runs it over every preset configuration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Set

__all__ = ["ModuleInfo", "lint_bundle", "lint_text", "parse_modules"]

_MODULE_RE = re.compile(
    r"^\s*module\s+(\w+)\s*(?:#\s*\((?P<params>.*?)\))?\s*\((?P<ports>.*?)\)\s*;",
    re.DOTALL | re.MULTILINE,
)
_INSTANCE_RE = re.compile(
    r"^\s*(\w+)\s+(u_\w+)\s*\((?P<conns>.*?)\)\s*;", re.DOTALL | re.MULTILINE
)
_PORT_CONN_RE = re.compile(r"\.(\w+)\s*\(")
_PARAM_DECL_RE = re.compile(r"\bparameter\s+(\w+)\s*=")
_INCLUDE_RE = re.compile(r'`include\s+"([^"]+)"')


@dataclass
class ModuleInfo:
    """One parsed module: its ports, parameters, and instantiations."""

    name: str
    ports: Set[str] = field(default_factory=set)
    parameters: Set[str] = field(default_factory=set)
    instances: Dict[str, Set[str]] = field(default_factory=dict)


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def _split_top_level(blob: str) -> List[str]:
    """Split on commas outside any bracket nesting (port/connection lists
    legally contain commas inside ranges like ``[$clog2(N)-1:0]``)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in blob:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def _port_names(ports_blob: str) -> Set[str]:
    """Port identifiers from an ANSI-style port list."""
    names: Set[str] = set()
    for chunk in _split_top_level(ports_blob):
        if not re.search(r"\b(?:input|output|inout)\b", chunk):
            continue
        identifiers = re.findall(r"[A-Za-z_]\w*", chunk)
        if identifiers:
            names.add(identifiers[-1])
    return names


def parse_modules(text: str) -> List[ModuleInfo]:
    """Extract module declarations and their instantiations."""
    text = _strip_comments(text)
    modules: List[ModuleInfo] = []
    for match in _MODULE_RE.finditer(text):
        info = ModuleInfo(name=match.group(1))
        info.ports = _port_names(match.group("ports") or "")
        params_blob = match.group("params") or ""
        for param_match in _PARAM_DECL_RE.finditer(params_blob):
            info.parameters.add(param_match.group(1))
        # body: from the header to the matching endmodule
        body_start = match.end()
        end = text.find("endmodule", body_start)
        body = text[body_start : end if end >= 0 else len(text)]
        for param_match in _PARAM_DECL_RE.finditer(body):
            info.parameters.add(param_match.group(1))
        for inst in _INSTANCE_RE.finditer(body):
            kind = inst.group(1)
            if kind in ("module", "assign", "reg", "wire", "integer",
                        "genvar", "always", "if", "for", "input", "output"):
                continue
            conns = set(_PORT_CONN_RE.findall(inst.group("conns")))
            info.instances.setdefault(kind, set()).update(conns)
        modules.append(info)
    return modules


def lint_text(name: str, text: str) -> List[str]:
    """Per-file structural checks."""
    violations: List[str] = []
    stripped = _strip_comments(text)
    module_opens = len(re.findall(r"^\s*module\s", stripped, re.MULTILINE))
    module_closes = stripped.count("endmodule")
    if module_opens != module_closes:
        violations.append(
            f"{name}: {module_opens} 'module' vs {module_closes} 'endmodule'"
        )
    begins = len(re.findall(r"\bbegin\b", stripped))
    ends = len(re.findall(r"\bend\b", stripped))
    if begins != ends:
        violations.append(f"{name}: {begins} 'begin' vs {ends} 'end'")
    generates = len(re.findall(r"(?<![\w])generate\b", stripped))
    endgenerates = len(re.findall(r"\bendgenerate\b", stripped))
    if generates != endgenerates:
        violations.append(
            f"{name}: {generates} 'generate' vs {endgenerates} "
            "'endgenerate'"
        )
    if stripped.count("(") != stripped.count(")"):
        violations.append(f"{name}: unbalanced parentheses")
    if stripped.count("[") != stripped.count("]"):
        violations.append(f"{name}: unbalanced brackets")
    return violations


def lint_bundle(paths: Sequence[Path]) -> List[str]:
    """Cross-file checks over a generated bundle."""
    violations: List[str] = []
    texts: Dict[str, str] = {}
    for path in paths:
        if path.suffix in (".v", ".vh"):
            texts[path.name] = path.read_text()
    all_modules: Dict[str, ModuleInfo] = {}
    for name, text in texts.items():
        violations.extend(lint_text(name, text))
        for info in parse_modules(text):
            if info.name in all_modules:
                violations.append(f"duplicate module {info.name!r}")
            all_modules[info.name] = info
    # includes present
    for name, text in texts.items():
        for include in _INCLUDE_RE.findall(text):
            if include not in texts:
                violations.append(f"{name}: missing include {include!r}")
    # instantiation targets and port names
    for info in all_modules.values():
        for kind, conns in info.instances.items():
            target = all_modules.get(kind)
            if target is None:
                violations.append(
                    f"{info.name}: instantiates unknown module {kind!r}"
                )
                continue
            unknown = conns - target.ports
            for port in sorted(unknown):
                violations.append(
                    f"{info.name}: connects nonexistent port "
                    f"{kind}.{port}"
                )
    return violations
