"""Control/status register map generation.

The prototype's embedded CPU "is used to configure the register and table
entries at run-time" (paper Section IV.A) over FAST's register interface.
This module derives that interface from a :class:`SwitchConfig`: a memory
map with one window per customized table (depth = the injected size, one
32-bit word per entry-beat), the per-port replication the per-port tables
need, and standard ID/control/status registers.

Three artifacts per configuration:

* :class:`CsrMap` -- the in-memory model (used by tests and tools);
* :func:`emit_c_header` -- ``tsn_csr.h`` with ``#define`` offsets for the
  embedded firmware;
* :func:`emit_markdown` -- a human-readable register-map document.

Addresses are assigned sequentially with natural alignment, each window
padded to a power of two so address decoding is a mask -- how real CSR
generators (and the FAST framework) lay out windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigurationError

__all__ = ["CsrWindow", "CsrMap", "build_csr_map", "emit_c_header",
           "emit_markdown"]

_WORD_BYTES = 4


def _words_per_entry(width_bits: int) -> int:
    return max(1, math.ceil(width_bits / 32))


def _pow2_at_least(value: int) -> int:
    return 1 << max(0, (value - 1).bit_length())


@dataclass(frozen=True)
class CsrWindow:
    """One address window: a register block or a table aperture."""

    name: str
    offset: int
    size_bytes: int
    entries: int
    entry_width_bits: int
    description: str
    per_port_instance: Optional[int] = None  # port id, or None if shared

    @property
    def end(self) -> int:
        return self.offset + self.size_bytes

    def overlaps(self, other: "CsrWindow") -> bool:
        return self.offset < other.end and other.offset < self.end

    @property
    def macro_name(self) -> str:
        base = self.name.upper().replace(" ", "_").replace(".", "_")
        return f"TSN_CSR_{base}"


@dataclass
class CsrMap:
    """The full register map of one customized switch."""

    config_name: str
    windows: List[CsrWindow] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return max((w.end for w in self.windows), default=0)

    def window(self, name: str) -> CsrWindow:
        for candidate in self.windows:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no CSR window named {name!r}")

    def validate(self) -> None:
        """No overlaps, alignment respected."""
        ordered = sorted(self.windows, key=lambda w: w.offset)
        for left, right in zip(ordered, ordered[1:]):
            if left.overlaps(right):
                raise ConfigurationError(
                    f"CSR windows {left.name!r} and {right.name!r} overlap"
                )
        for window in self.windows:
            if window.offset % _WORD_BYTES:
                raise ConfigurationError(
                    f"CSR window {window.name!r} not word aligned"
                )


def build_csr_map(config: SwitchConfig) -> CsrMap:
    """Derive the register map from a configuration."""
    config.validate()
    csr = CsrMap(config.name)
    cursor = 0

    def add(name: str, entries: int, width_bits: int, description: str,
            port: Optional[int] = None) -> None:
        nonlocal cursor
        words = entries * _words_per_entry(width_bits)
        size = _pow2_at_least(max(words * _WORD_BYTES, _WORD_BYTES * 4))
        cursor = (cursor + size - 1) // size * size  # natural alignment
        csr.windows.append(
            CsrWindow(
                name=name,
                offset=cursor,
                size_bytes=size,
                entries=entries,
                entry_width_bits=width_bits,
                description=description,
                per_port_instance=port,
            )
        )
        cursor += size

    widths = config.widths
    add("id", 4, 32, "device id, version, capability, scratch")
    add("control", 4, 32, "enable, reset, gate base-time latch")
    add("status", 8, 32, "counters snapshot, sync state")
    add("unicast_tbl", config.unicast_size, widths.switch_tbl,
        "Packet Switch unicast table")
    if config.multicast_size:
        add("multicast_tbl", config.multicast_size, widths.switch_tbl,
            "Packet Switch multicast table")
    add("class_tbl", config.class_size, widths.class_tbl,
        "Ingress Filter classification table")
    add("meter_tbl", config.meter_size, widths.meter_tbl,
        "Ingress Filter meter table")
    for port in range(config.port_num):
        add(f"p{port}_in_gate_tbl", config.gate_size, widths.gate_tbl,
            f"port {port} ingress GCL", port)
        add(f"p{port}_out_gate_tbl", config.gate_size, widths.gate_tbl,
            f"port {port} egress GCL", port)
        add(f"p{port}_cbs_map_tbl", config.cbs_map_size,
            widths.cbs_tbl_total // 2, f"port {port} CBS map table", port)
        add(f"p{port}_cbs_tbl", config.cbs_size,
            widths.cbs_tbl_total // 2, f"port {port} CBS table", port)
    csr.validate()
    return csr


def emit_c_header(csr: CsrMap) -> str:
    """``tsn_csr.h`` for the embedded control-plane firmware."""
    lines = [
        "/*",
        f" * CSR map for TSN-Builder configuration '{csr.config_name}'.",
        " * Generated -- do not edit; re-run the generator.",
        " */",
        "#ifndef TSN_CSR_H",
        "#define TSN_CSR_H",
        "",
        f"#define TSN_CSR_SPAN 0x{csr.size_bytes:08X}u",
        "",
    ]
    for window in csr.windows:
        lines.append(f"/* {window.description} */")
        lines.append(
            f"#define {window.macro_name}_OFFSET 0x{window.offset:08X}u"
        )
        lines.append(
            f"#define {window.macro_name}_SIZE   0x{window.size_bytes:08X}u"
        )
        lines.append(
            f"#define {window.macro_name}_ENTRIES {window.entries}u"
        )
        lines.append("")
    lines.append("#endif /* TSN_CSR_H */")
    lines.append("")
    return "\n".join(lines)


def emit_markdown(csr: CsrMap) -> str:
    """A human-readable register-map table."""
    lines = [
        f"# CSR map — {csr.config_name}",
        "",
        f"Total span: {csr.size_bytes} bytes "
        f"(0x{csr.size_bytes:X}).",
        "",
        "| window | offset | size | entries | entry width | scope |",
        "|---|---|---|---|---|---|",
    ]
    for window in csr.windows:
        scope = (
            "shared"
            if window.per_port_instance is None
            else f"port {window.per_port_instance}"
        )
        lines.append(
            f"| `{window.name}` | 0x{window.offset:06X} | "
            f"{window.size_bytes} B | {window.entries} | "
            f"{window.entry_width_bits} b | {scope} |"
        )
    lines.append("")
    return "\n".join(lines)
