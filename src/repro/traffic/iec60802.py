"""IEC 60802-guided industrial traffic profiles.

Paper Section IV.A: "The features of TS flows that we generate are guided
with the IEC 60802 standard that describes the typical flow features in the
production cell and line.  In our experiments, we generate 1024 periodic TS
flows and the period of each TS flow is 10ms.  The deadline of each TS flow
is randomly selected from the set {1ms, 2ms, 4ms, 8ms}.  The packet size of
these TS flows in each test is the same and selected from the set {64B,
128B, 256B, 512B, 1024B, 1500B}. ... Since the RC/BE flows are background
flows here, the packet size of each RC/BE flow is set as 1024B."

:func:`production_cell_flows` reproduces exactly that generator;
:func:`isochronous_cell_flows` and :func:`controller_to_controller_flows`
add the two other canonical IEC 60802 traffic patterns for users modelling
richer cells (shorter cyclic periods, larger c2c frames).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.core.units import mbps, ms, us
from .flows import FlowSet, FlowSpec, TrafficClass

__all__ = [
    "DEADLINE_CHOICES_NS",
    "TS_SIZE_CHOICES",
    "production_cell_flows",
    "background_flows",
    "isochronous_cell_flows",
    "controller_to_controller_flows",
]

#: Paper Section IV.A deadline set.
DEADLINE_CHOICES_NS = (ms(1), ms(2), ms(4), ms(8))

#: Paper Section IV.A / Fig 7(b) packet-size set.
TS_SIZE_CHOICES = (64, 128, 256, 512, 1024, 1500)

#: Background RC/BE frames are fixed at 1024 B.
BACKGROUND_SIZE_BYTES = 1024


def production_cell_flows(
    talkers: Sequence[str],
    listener: str,
    flow_count: int = 1024,
    period_ns: int = ms(10),
    size_bytes: int = 64,
    rng: Optional[random.Random] = None,
    first_flow_id: int = 0,
) -> FlowSet:
    """The paper's TS workload: *flow_count* periodic flows, random deadlines.

    Flows are dealt round-robin across *talkers* (the testbed's TSNNic
    devices) toward a single *listener* (the TSN analyzer).
    """
    if not talkers:
        raise ConfigurationError("need at least one talker")
    if size_bytes not in TS_SIZE_CHOICES:
        raise ConfigurationError(
            f"TS size {size_bytes}B outside the IEC 60802 profile set "
            f"{TS_SIZE_CHOICES}"
        )
    rng = rng or random.Random(0)
    flows = FlowSet()
    for i in range(flow_count):
        flows.add(
            FlowSpec(
                flow_id=first_flow_id + i,
                traffic_class=TrafficClass.TS,
                src=talkers[i % len(talkers)],
                dst=listener,
                size_bytes=size_bytes,
                period_ns=period_ns,
                deadline_ns=rng.choice(DEADLINE_CHOICES_NS),
            )
        )
    return flows


def background_flows(
    talkers: Sequence[str],
    listener: str,
    rc_rate_bps: int,
    be_rate_bps: int,
    size_bytes: int = BACKGROUND_SIZE_BYTES,
    first_flow_id: int = 100_000,
) -> FlowSet:
    """One RC and one BE aggregate per talker, splitting the given rates.

    ``rc_rate_bps``/``be_rate_bps`` are the *total* background loads (the
    x-axes of Fig 2 and Fig 7(d)); each talker carries an equal share.
    Zero rates simply produce no flows of that class.
    """
    if not talkers:
        raise ConfigurationError("need at least one talker")
    flows = FlowSet()
    next_id = first_flow_id
    for traffic_class, total_rate in (
        (TrafficClass.RC, rc_rate_bps),
        (TrafficClass.BE, be_rate_bps),
    ):
        if total_rate <= 0:
            continue
        share = total_rate // len(talkers)
        if share <= 0:
            raise ConfigurationError(
                f"{traffic_class.name} rate {total_rate}bps too small to "
                f"split across {len(talkers)} talkers"
            )
        for talker in talkers:
            flows.add(
                FlowSpec(
                    flow_id=next_id,
                    traffic_class=traffic_class,
                    src=talker,
                    dst=listener,
                    size_bytes=size_bytes,
                    rate_bps=share,
                )
            )
            next_id += 1
    return flows


def isochronous_cell_flows(
    talkers: Sequence[str],
    listener: str,
    flow_count: int = 64,
    period_ns: int = us(250),
    size_bytes: int = 128,
    first_flow_id: int = 200_000,
) -> FlowSet:
    """Isochronous motion-control traffic: short period, tight deadline.

    IEC 60802 traffic type "isochronous": cycle times down to 250 us with
    the deadline equal to the period.
    """
    if not talkers:
        raise ConfigurationError("need at least one talker")
    flows = FlowSet()
    for i in range(flow_count):
        flows.add(
            FlowSpec(
                flow_id=first_flow_id + i,
                traffic_class=TrafficClass.TS,
                src=talkers[i % len(talkers)],
                dst=listener,
                size_bytes=size_bytes,
                period_ns=period_ns,
                deadline_ns=period_ns,
            )
        )
    return flows


def controller_to_controller_flows(
    pairs: Sequence[Sequence[str]],
    rate_bps: int = mbps(20),
    size_bytes: int = 1024,
    first_flow_id: int = 300_000,
) -> FlowSet:
    """Controller-to-controller RC traffic between station pairs.

    IEC 60802 traffic type "network control / c2c": bandwidth-reserved,
    large frames, no per-packet deadline -- mapped onto RC with CBS.
    """
    flows = FlowSet()
    for i, pair in enumerate(pairs):
        if len(pair) != 2:
            raise ConfigurationError(f"pair {pair!r} must be (src, dst)")
        src, dst = pair
        flows.add(
            FlowSpec(
                flow_id=first_flow_id + i,
                traffic_class=TrafficClass.RC,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                rate_bps=rate_bps,
            )
        )
    return flows
