"""Flow specifications: the TS / RC / BE taxonomy.

Paper Section II.A: TSN traffic divides into three types --

* **Time-Sensitive (TS)** flows, highest priority: periodic, must arrive
  before a deadline with ultra-low jitter and loss.
* **Rate-Constrained (RC)** flows, medium priority: reserved bandwidth,
  shaped by CBS.
* **Best-Effort (BE)** flows, lowest priority: whatever bandwidth is left.

A :class:`FlowSpec` is pure description -- who talks to whom, how much, how
often.  The testbed turns specs into generators, table entries, meters and
CBS reservations; ITP assigns TS specs their injection offsets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.units import ETH_MIN_FRAME_BYTES

__all__ = ["TrafficClass", "FlowSpec", "FlowSet"]


class TrafficClass(enum.Enum):
    """The three TSN traffic types with their 802.1Q priority mapping."""

    TS = "time-sensitive"
    RC = "rate-constrained"
    BE = "best-effort"

    @property
    def default_pcp(self) -> int:
        """Priority code point used when a spec does not override it.

        TS maps to PCP 7 (classified into the CQF queue pair 6/7), RC to
        PCP 5 (the top of the three RC queues 3..5), BE to PCP 0.
        """
        return {TrafficClass.TS: 7, TrafficClass.RC: 5, TrafficClass.BE: 0}[self]


@dataclass(frozen=True)
class FlowSpec:
    """One flow's contract.

    TS flows are periodic: ``period_ns`` and optionally ``deadline_ns``
    (checked by the analyzer) are required, ``rate_bps`` is derived.
    RC/BE flows are rate-based: ``rate_bps`` is required and ``period_ns``
    is the derived inter-frame gap.
    """

    flow_id: int
    traffic_class: TrafficClass
    src: str
    dst: str
    size_bytes: int
    period_ns: Optional[int] = None
    rate_bps: Optional[int] = None
    deadline_ns: Optional[int] = None
    pcp: Optional[int] = None
    vlan_id: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes < ETH_MIN_FRAME_BYTES:
            raise ConfigurationError(
                f"flow {self.flow_id}: frame size {self.size_bytes}B below "
                f"Ethernet minimum {ETH_MIN_FRAME_BYTES}B"
            )
        if self.traffic_class is TrafficClass.TS:
            if not self.period_ns or self.period_ns <= 0:
                raise ConfigurationError(
                    f"TS flow {self.flow_id} needs a positive period"
                )
            if self.deadline_ns is not None and self.deadline_ns <= 0:
                raise ConfigurationError(
                    f"TS flow {self.flow_id}: deadline must be positive"
                )
        else:
            if not self.rate_bps or self.rate_bps <= 0:
                raise ConfigurationError(
                    f"{self.traffic_class.name} flow {self.flow_id} needs a "
                    "positive rate"
                )
        if self.pcp is not None and not 0 <= self.pcp <= 7:
            raise ConfigurationError(
                f"flow {self.flow_id}: PCP must be 0..7, got {self.pcp}"
            )

    @property
    def effective_pcp(self) -> int:
        return self.pcp if self.pcp is not None else self.traffic_class.default_pcp

    @property
    def effective_rate_bps(self) -> int:
        """Offered load in bits/s (derived from the period for TS flows)."""
        if self.rate_bps is not None:
            return self.rate_bps
        assert self.period_ns is not None
        return self.size_bytes * 8 * 10**9 // self.period_ns

    @property
    def inter_frame_ns(self) -> int:
        """Gap between frame injections (derived from rate for RC/BE)."""
        if self.period_ns is not None:
            return self.period_ns
        assert self.rate_bps is not None
        return max(1, self.size_bytes * 8 * 10**9 // self.rate_bps)

    def with_updates(self, **changes) -> "FlowSpec":
        return replace(self, **changes)


class FlowSet:
    """An ordered, id-unique collection of flow specs."""

    def __init__(self, flows: Sequence[FlowSpec] = ()):
        self._flows: List[FlowSpec] = []
        self._by_id: Dict[int, FlowSpec] = {}
        for flow in flows:
            self.add(flow)

    def add(self, flow: FlowSpec) -> None:
        if flow.flow_id in self._by_id:
            raise ConfigurationError(f"duplicate flow id {flow.flow_id}")
        self._flows.append(flow)
        self._by_id[flow.flow_id] = flow

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowSpec]:
        return iter(self._flows)

    def __getitem__(self, flow_id: int) -> FlowSpec:
        return self._by_id[flow_id]

    def by_class(self, traffic_class: TrafficClass) -> List[FlowSpec]:
        return [f for f in self._flows if f.traffic_class is traffic_class]

    @property
    def ts_flows(self) -> List[FlowSpec]:
        return self.by_class(TrafficClass.TS)

    @property
    def rc_flows(self) -> List[FlowSpec]:
        return self.by_class(TrafficClass.RC)

    @property
    def be_flows(self) -> List[FlowSpec]:
        return self.by_class(TrafficClass.BE)

    def ts_periods(self) -> List[int]:
        """All TS periods (input to the scheduling-cycle LCM)."""
        periods = []
        for flow in self.ts_flows:
            assert flow.period_ns is not None
            periods.append(flow.period_ns)
        return periods

    def total_rate_bps(self, traffic_class: Optional[TrafficClass] = None) -> int:
        """Aggregate offered load, optionally restricted to one class."""
        flows: Sequence[FlowSpec]
        if traffic_class is None:
            flows = self._flows
        else:
            flows = self.by_class(traffic_class)
        return sum(flow.effective_rate_bps for flow in flows)

    def endpoints(self) -> Tuple[List[str], List[str]]:
        """(sorted unique sources, sorted unique destinations)."""
        return (
            sorted({f.src for f in self._flows}),
            sorted({f.dst for f in self._flows}),
        )
