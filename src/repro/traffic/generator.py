"""Traffic generators: the TSNNic equivalent.

The paper drives its testbed with TSNNic, an FPGA network tester that
injects user-defined TS/RC/BE flows.  Here, generators are simulation
processes attached to a host's NIC:

* :class:`PeriodicSource` -- TS flows: one frame per period, injected at the
  ITP-planned slot offset (or a caller-chosen phase).
* :class:`RateSource` -- RC/BE background: frames spaced to sustain a target
  bit rate, with optional randomized start phase so multiple background
  flows do not beat against each other, and an optional Poisson mode for
  bursty best-effort traffic.

Generators do not touch the network directly; they call an ``inject``
callable (the host NIC's entry point) with fully formed frames.
"""

from __future__ import annotations

from typing import Callable, Optional

import random

from repro.core.errors import ConfigurationError
from repro.obs.flowspans import FlowSpanRecorder
from repro.sim.kernel import Simulator
from repro.switch.packet import EthernetFrame, MacAddress

__all__ = ["PeriodicSource", "RateSource", "InjectFn"]

InjectFn = Callable[[EthernetFrame], None]


class _SourceBase:
    """Common frame-stamping machinery."""

    def __init__(
        self,
        sim: Simulator,
        inject: InjectFn,
        flow_id: int,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        vlan_id: int,
        pcp: int,
        size_bytes: int,
        spans: Optional[FlowSpanRecorder] = None,
        batch=None,
    ) -> None:
        self._sim = sim
        self._inject = inject
        self._spans = spans
        #: Optional :class:`~repro.switch.batch.FrameBatch`; when set,
        #: :meth:`_emit` allocates integer handles instead of frame
        #: objects (the batched fast path).
        self._batch = batch
        self.flow_id = flow_id
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.vlan_id = vlan_id
        self.pcp = pcp
        self.size_bytes = size_bytes
        self.emitted = 0
        self._stopped = False

    def stop(self) -> None:
        """No further frames after the current instant."""
        self._stopped = True

    def _emit(self) -> None:
        if self._batch is not None:
            frame = self._batch.alloc(
                self.src_mac, self.dst_mac, self.vlan_id, self.pcp,
                self.size_bytes, self.flow_id, self.emitted, self._sim.now,
            )
            self.emitted += 1
            if self._spans is not None:
                self._spans.record(
                    self._sim.now, "gen", f"flow{self.flow_id}",
                    self._batch.materialize(frame),
                )
            self._inject(frame)
            return
        frame = EthernetFrame(
            src_mac=self.src_mac,
            dst_mac=self.dst_mac,
            vlan_id=self.vlan_id,
            pcp=self.pcp,
            size_bytes=self.size_bytes,
            flow_id=self.flow_id,
            seq=self.emitted,
            created_ns=self._sim.now,
        )
        self.emitted += 1
        if self._spans is not None:
            self._spans.record(self._sim.now, "gen", f"flow{self.flow_id}", frame)
        self._inject(frame)


class PeriodicSource(_SourceBase):
    """A TS flow: one frame every ``period_ns``, phase-shifted by ``offset_ns``.

    ``limit`` bounds the number of frames (None = run until stopped); the
    testbed uses a limit derived from the measurement window so runs end
    deterministically.
    """

    def __init__(
        self,
        sim: Simulator,
        inject: InjectFn,
        flow_id: int,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        size_bytes: int,
        period_ns: int,
        offset_ns: int = 0,
        vlan_id: int = 1,
        pcp: int = 7,
        limit: Optional[int] = None,
        spans: Optional[FlowSpanRecorder] = None,
        batch=None,
    ) -> None:
        super().__init__(
            sim, inject, flow_id, src_mac, dst_mac, vlan_id, pcp, size_bytes,
            spans=spans, batch=batch,
        )
        if period_ns <= 0:
            raise ConfigurationError(f"period must be positive, got {period_ns}")
        if offset_ns < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset_ns}")
        self.period_ns = period_ns
        self.offset_ns = offset_ns
        self.limit = limit

    def start(self) -> None:
        self._sim.post(self.offset_ns, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        if self.limit is not None and self.emitted >= self.limit:
            return
        self._emit()
        self._sim.post(self.period_ns, self._tick)


class RateSource(_SourceBase):
    """An RC/BE background flow sustaining ``rate_bps``.

    Deterministic mode spaces frames exactly ``size * 8e9 / rate`` ns apart;
    Poisson mode draws exponential gaps with that mean (bursty BE).  A zero
    rate is allowed and produces nothing, letting sweeps include a 0-load
    point without special-casing.
    """

    def __init__(
        self,
        sim: Simulator,
        inject: InjectFn,
        flow_id: int,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        size_bytes: int,
        rate_bps: int,
        start_ns: int = 0,
        vlan_id: int = 1,
        pcp: int = 0,
        poisson: bool = False,
        rng: Optional[random.Random] = None,
        until_ns: Optional[int] = None,
        spans: Optional[FlowSpanRecorder] = None,
        batch=None,
    ) -> None:
        super().__init__(
            sim, inject, flow_id, src_mac, dst_mac, vlan_id, pcp, size_bytes,
            spans=spans, batch=batch,
        )
        if rate_bps < 0:
            raise ConfigurationError(f"rate must be >= 0, got {rate_bps}")
        if poisson and rng is None:
            raise ConfigurationError("poisson mode needs an rng")
        self.rate_bps = rate_bps
        self.start_ns = start_ns
        self.poisson = poisson
        self._rng = rng
        self.until_ns = until_ns

    @property
    def mean_gap_ns(self) -> int:
        assert self.rate_bps > 0
        return max(1, self.size_bytes * 8 * 10**9 // self.rate_bps)

    def start(self) -> None:
        if self.rate_bps == 0:
            return
        self._sim.post(self.start_ns, self._tick)

    def _next_gap(self) -> int:
        if not self.poisson:
            return self.mean_gap_ns
        assert self._rng is not None
        return max(1, round(self._rng.expovariate(1.0 / self.mean_gap_ns)))

    def _tick(self) -> None:
        if self._stopped:
            return
        if self.until_ns is not None and self._sim.now >= self.until_ns:
            return
        self._emit()
        self._sim.post(self._next_gap(), self._tick)
