"""Parallel campaign engine: declarative sweeps over scenario space.

The paper's headline result (-80.53 % BRAM at equal QoS) comes from
*exploring* customization parameters per topology.  This package turns that
exploration into a first-class workload:

* :class:`~repro.campaign.spec.SweepSpec` expands a grid/list document
  (over flow counts, queue depths, table sizes, topologies, seeds) into
  concrete :class:`~repro.network.scenario.ScenarioSpec` runs with
  deterministic per-run seed derivation;
* :class:`~repro.campaign.runner.Campaign` executes the runs across a
  ``ProcessPoolExecutor`` with per-run timeouts and bounded retries,
  streaming each finished row to JSONL;
* :mod:`~repro.campaign.pareto` aggregates the rows into a summary with a
  BRAM-vs-QoS Pareto frontier.

CLI: ``python -m repro sweep <spec.json> --workers N --timeout S
--retries K --out DIR``.  See ``docs/campaigns.md``.
"""

from .pareto import aggregate_rows, pareto_frontier
from .runner import Campaign
from .spec import PlannedRun, SweepSpec, derive_seed

__all__ = [
    "Campaign",
    "SweepSpec",
    "PlannedRun",
    "derive_seed",
    "aggregate_rows",
    "pareto_frontier",
]
