"""The per-run unit of work executed inside a worker process.

:func:`execute_run` must stay a module-level function with a picklable
payload/return so ``ProcessPoolExecutor`` can ship it under any start
method.  It never raises: every failure mode -- scenario error, simulation
blow-up, per-run timeout -- comes back as a row with a ``status`` field, so
the parent's retry/streaming logic needs no exception plumbing.

Rows contain only deterministic content (no wall-clock timestamps): the
acceptance bar for the campaign engine is byte-identical rows and
aggregates regardless of worker count, and elapsed times would break that.
Wall-clock telemetry still gets measured per run, but it travels back on
the row's ``_telemetry`` side channel, which the runner strips before any
row reaches JSONL or aggregation; heartbeats stream to the shared status
file instead (see :mod:`repro.obs.campaign`).

Two per-run watchdogs coexist: the wall-clock ``SIGALRM`` (environmental,
nondeterministic by nature) and the kernel's *event budget*
(:class:`~repro.sim.kernel.EventBudgetExceeded`), which trips at exactly
the same simulation point everywhere and therefore yields byte-identical
timeout rows and flight-recorder dumps at any worker count.
"""

from __future__ import annotations

import signal
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.errors import TsnBuilderError
from repro.sim.kernel import EventBudgetExceeded

__all__ = ["execute_run", "RunTimeout"]


class RunTimeout(Exception):
    """A single run exceeded its wall-clock budget."""


def _alarm_supported() -> bool:
    # SIGALRM only exists on POSIX and only fires in the main thread.
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _raise_timeout(signum, frame):  # pragma: no cover - trivial
    raise RunTimeout()


def execute_run(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one expanded scenario and digest the result into a JSONL row."""
    from repro.network.scenario import ScenarioSpec
    from repro.obs.campaign import WorkerTelemetry, flight_dump_name

    attempt = payload.get("attempt", 1)
    row: Dict[str, Any] = {
        "run_id": payload["run_id"],
        "index": payload["index"],
        "replicate": payload["replicate"],
        "seed": payload["seed"],
        "params": payload["overrides"],
    }
    timeout_s = payload.get("timeout_s")
    telemetry = WorkerTelemetry(
        payload["run_id"],
        attempt=attempt,
        index=payload["index"],
        status_path=payload.get("status_file"),
        interval_ns=payload.get("heartbeat_interval_ns"),
    )
    if timeout_s is not None and timeout_s <= 0:
        # An exhausted (zero/negative) budget must *fire*, not arm:
        # ``setitimer(ITIMER_REAL, 0.0)`` silently disables the timer and
        # a negative value raises -- either way the run would proceed
        # unwatched.  Short-circuit to the same row a fired alarm yields.
        row["status"] = "timeout"
        row["error"] = f"run exceeded {timeout_s:g}s"
        row["_telemetry"] = telemetry.finish(row["status"], row["error"])
        return row
    use_alarm = timeout_s is not None and _alarm_supported()
    recorder = None
    sim: Optional[Any] = None
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _raise_timeout)
        armed_at = time.monotonic()
        # setitimer returns the timer it displaced; teardown re-arms it
        # (minus our elapsed time) so an outer watchdog keeps ticking.
        prior_timer = signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        # Expansion already validated the document; strict would only
        # re-check it in every worker.
        if payload["scenario"].get("shard"):
            # Partitioned run: there is no single kernel to attach the
            # flight recorder / event budget / heartbeat probes to, so
            # those per-run observers are skipped; rows stay identical to
            # the unsharded run's (the shard determinism contract).
            from repro.sim.shard import run_sharded

            result = run_sharded(payload["scenario"])
            config = result.base_config
        else:
            spec = ScenarioSpec.from_dict(payload["scenario"], strict=False)
            testbed = spec.build_testbed()
            sim = testbed.sim
            if payload.get("flight_dir"):
                from repro.obs.flight import FlightRecorder

                recorder = FlightRecorder()
                sim.flight = recorder
            if payload.get("event_budget"):
                sim.event_budget = int(payload["event_budget"])
            telemetry.attach(sim, spec.duration_ns)
            config = testbed.base_config
            result = testbed.run(duration_ns=spec.duration_ns)
        row.update(_measurements(result, config))
        row["status"] = "ok"
    except RunTimeout:
        row["status"] = "timeout"
        row["error"] = f"run exceeded {timeout_s:g}s"
    except EventBudgetExceeded as exc:
        # The deterministic timeout: same sim point on every host.
        row["status"] = "timeout"
        row["error"] = str(exc)
    except TsnBuilderError as exc:
        row["status"] = "error"
        row["error"] = str(exc)
        row["error_type"] = type(exc).__name__
    except Exception as exc:  # simulation bugs must not kill the campaign
        row["status"] = "error"
        row["error"] = f"{type(exc).__name__}: {exc}"
        row["error_type"] = type(exc).__name__
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
            prior_delay, prior_interval = prior_timer
            if prior_delay > 0.0:
                # Restore the displaced itimer with whatever time it had
                # left; clamp at a minimal positive delay (0 would disable
                # it) so an already-due outer timer fires immediately.
                remaining = max(
                    prior_delay - (time.monotonic() - armed_at), 1e-6
                )
                signal.setitimer(
                    signal.ITIMER_REAL, remaining, prior_interval
                )
    if recorder is not None and row["status"] != "ok":
        name = flight_dump_name(payload["run_id"], attempt)
        context = {
            "run_id": payload["run_id"],
            "attempt": attempt,
            "seed": payload["seed"],
            "status": row["status"],
            "error": row.get("error"),
        }
        if sim is not None:
            context["sim_now_ns"] = sim.now
            context["sim_stats"] = sim.stats.as_dict()
        recorder.dump_to(Path(payload["flight_dir"]) / name, context)
        row["flight_dump"] = name
    digest = telemetry.finish(row["status"], row.get("error"))
    if sim is not None:
        # The backend this worker *actually* ran on travels back on the
        # telemetry side channel (rows must stay backend-agnostic: the
        # py/c equivalence lock compares them across backends); the
        # runner asserts it matches its own resolution.
        digest["backend"] = sim.backend
    row["_telemetry"] = digest
    return row


def _measurements(result, config) -> Dict[str, Any]:
    classes = result.analyzer.class_digest(result.expected_by_flow)
    ts = classes.get("TS", {})
    slo = result.slo
    qos_ok = ts.get("loss") == 0.0 and bool(ts.get("received"))
    if slo is not None and slo.monitored:
        qos_ok = qos_ok and slo.passed
    # Recorder-less headroom report: every input is deterministic sim state
    # (high waters, table fills), so rows stay byte-identical at any worker
    # count and the probes' overhead is never paid inside campaigns.
    # ``observed_bram_kb`` is the cheapest single sufficient config, the
    # same one-customization cost basis as ``bram_kb``.
    headroom = result.headroom_report()
    measurements: Dict[str, Any] = {
        "bram_kb": config.total_bram_kb,
        "observed_bram_kb": round(headroom.cheapest_kb, 3),
        "wasted_bram_kb": round(config.total_bram_kb - headroom.cheapest_kb, 3),
        "utilization": headroom.utilization_digest(),
        "classes": classes,
        "max_queue_high_water": result.max_queue_high_water(),
        "max_buffer_high_water": result.max_buffer_high_water(),
        "qos_ok": qos_ok,
    }
    if result.itp_plan is not None:
        measurements["depth_margin_frames"] = (
            config.queue_depth - result.itp_plan.required_queue_depth
        )
    if result.sched_plan is not None:
        plan = result.sched_plan
        measurements["sched"] = {
            "backend": plan.backend,
            "status": plan.status,
            "admitted": plan.admitted_count,
            "demanded": plan.demand_count,
            "admission_rate": round(plan.admission_rate, 6),
            "required_queue_depth": plan.required_queue_depth,
        }
    if slo is not None:
        measurements["slo"] = {
            "passed": slo.passed,
            "monitored_flows": slo.monitored,
        }
    faults = getattr(result, "faults", None)
    if faults is not None:
        gptp = faults.gptp or {}
        measurements["faults"] = {
            "events": len(faults.timeline),
            "frames_lost_in_failover": faults.frames_lost_in_failover,
            "frer_eliminated": faults.frer_eliminated,
            "gptp_elections": gptp.get("elections", 0),
        }
    return measurements
