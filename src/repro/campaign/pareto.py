"""Aggregating campaign rows: counts, extremes, BRAM-vs-QoS Pareto frontier.

The frontier answers the paper's core question at sweep scale: of all the
customizations that still meet QoS (zero TS loss, SLO verdicts passing),
which are not dominated in both BRAM cost and worst-case latency?  Every
function here is a pure transformation of the (sorted) row list, so the
aggregate is byte-identical however the rows were produced -- one worker or
many, any completion order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["pareto_frontier", "aggregate_rows"]


def _qos_metric(row: Dict[str, Any]) -> Optional[float]:
    """Worst-case TS latency (p99), the QoS axis of the frontier."""
    ts = row.get("classes", {}).get("TS", {})
    p99 = ts.get("p99_ns")
    return float(p99) if p99 is not None else None


def _frontier_point(row: Dict[str, Any]) -> Dict[str, Any]:
    ts = row["classes"]["TS"]
    point = {
        "run_id": row["run_id"],
        "params": row["params"],
        "seed": row["seed"],
        "bram_kb": row["bram_kb"],
        "ts_p99_ns": ts["p99_ns"],
        "ts_max_ns": ts["max_ns"],
        "ts_loss": ts["loss"],
    }
    if "observed_bram_kb" in row:
        point["observed_bram_kb"] = row["observed_bram_kb"]
    if "wasted_bram_kb" in row:
        point["wasted_bram_kb"] = row["wasted_bram_kb"]
    if "sched" in row:
        point["sched"] = row["sched"]
    return point


def pareto_frontier(
    rows: List[Dict[str, Any]], bram_key: str = "bram_kb"
) -> List[Dict[str, Any]]:
    """Non-dominated (*bram_key*, ts_p99_ns) points among QoS-meeting ok rows.

    Both axes are minimized.  A point survives unless some other point is
    no worse on both axes and strictly better on at least one.  The result
    is sorted by ascending BRAM (ties by latency, then run id) and strictly
    decreasing in latency.  *bram_key* selects the cost axis: the default
    ``"bram_kb"`` is the provisioned cost; ``"observed_bram_kb"`` ranks by
    the cheapest-sufficient re-costing from the headroom report instead,
    exposing customizations that only look expensive because they were
    over-provisioned.
    """
    feasible = [
        row for row in rows
        if row.get("status") == "ok"
        and row.get("qos_ok")
        and row.get(bram_key) is not None
        and _qos_metric(row) is not None
    ]
    feasible.sort(
        key=lambda r: (r[bram_key], _qos_metric(r), r["run_id"])
    )
    frontier: List[Dict[str, Any]] = []
    best_latency = float("inf")
    for row in feasible:
        latency = _qos_metric(row)
        if latency < best_latency:
            frontier.append(_frontier_point(row))
            best_latency = latency
    return frontier


def aggregate_rows(
    name: str, rows: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """One deterministic summary document for a finished campaign.

    *rows* may arrive in any completion order; they are re-sorted by run
    index before anything is derived from them.
    """
    ordered = sorted(rows, key=lambda r: r["index"])
    by_status: Dict[str, int] = {}
    for row in ordered:
        by_status[row["status"]] = by_status.get(row["status"], 0) + 1
    ok_rows = [r for r in ordered if r["status"] == "ok"]
    frontier = pareto_frontier(ordered)
    summary: Dict[str, Any] = {
        "campaign": name,
        "runs": len(ordered),
        "status": by_status,
        "qos_ok": sum(1 for r in ok_rows if r.get("qos_ok")),
        "pareto": frontier,
        "best": frontier[0] if frontier else None,
        "failures": [
            {"run_id": r["run_id"], "status": r["status"],
             "error": r.get("error")}
            for r in ordered if r["status"] != "ok"
        ],
    }
    # The observed frontier re-ranks the same feasible set by what the run
    # actually needed (cheapest-sufficient BRAM) rather than what it was
    # provisioned with; only emitted when rows carry headroom accounting.
    observed = pareto_frontier(ordered, bram_key="observed_bram_kb")
    if observed:
        summary["observed_pareto"] = observed
    if ok_rows:
        brams = [r["bram_kb"] for r in ok_rows]
        summary["bram_kb"] = {"min": min(brams), "max": max(brams)}
        observed_brams = [
            r["observed_bram_kb"] for r in ok_rows
            if r.get("observed_bram_kb") is not None
        ]
        if observed_brams:
            summary["observed_bram_kb"] = {
                "min": min(observed_brams), "max": max(observed_brams),
            }
        latencies = [
            _qos_metric(r) for r in ok_rows if _qos_metric(r) is not None
        ]
        if latencies:
            summary["ts_p99_ns"] = {
                "min": min(latencies), "max": max(latencies),
            }
        sched_digest = _sched_digest(ok_rows)
        if sched_digest:
            summary["sched"] = sched_digest
    return summary


def _sched_digest(ok_rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-backend extremes: the greedy-vs-optimal gap at a glance.

    Groups QoS-relevant outcomes by scheduling backend so a sweep over
    ``sched.backend`` reads off admission/depth/BRAM gaps without digging
    through rows.  Empty when no row carries a ``sched`` measurement.
    """
    by_backend: Dict[str, List[Dict[str, Any]]] = {}
    for row in ok_rows:
        sched = row.get("sched")
        if sched:
            by_backend.setdefault(sched["backend"], []).append(row)
    digest: Dict[str, Any] = {}
    for backend in sorted(by_backend):
        group = by_backend[backend]
        plans = [r["sched"] for r in group]
        entry: Dict[str, Any] = {
            "runs": len(group),
            "statuses": sorted({p["status"] for p in plans}),
            "admission_rate_min": min(p["admission_rate"] for p in plans),
            "required_queue_depth_max": max(
                p["required_queue_depth"] for p in plans
            ),
        }
        brams = [r["bram_kb"] for r in group if r.get("bram_kb") is not None]
        if brams:
            entry["bram_kb_min"] = min(brams)
            entry["bram_kb_max"] = max(brams)
        digest[backend] = entry
    return digest
