"""Executing a campaign: process pool, timeouts, retries, JSONL streaming.

:class:`Campaign` is the programmatic face of ``repro sweep``.  It expands
a :class:`~repro.campaign.spec.SweepSpec`, farms the runs out to a
``ProcessPoolExecutor`` (or runs them inline for ``workers=1``), retries
failed/timed-out runs up to a bound, and streams every finished row to a
JSONL sink the moment it completes -- a crashed campaign leaves all its
finished work on disk.

Determinism contract: row *content* is a pure function of the sweep
document (seeds are derived, wall-clock never enters a row), so any worker
count produces the same row set; only JSONL file order varies with
completion order.  The aggregate re-sorts by run index first and is
therefore byte-identical across worker counts -- the property
``benchmarks/bench_campaign.py`` asserts while measuring scaling.
"""

from __future__ import annotations

import json
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Union

from .pareto import aggregate_rows
from .spec import PlannedRun, SweepSpec
from .worker import execute_run

__all__ = ["Campaign"]

Progress = Callable[[Dict[str, Any], int, int], None]


class Campaign:
    """Execute every run of a sweep and aggregate the results.

    Parameters
    ----------
    spec:
        The sweep to execute.
    workers:
        Process count.  ``1`` runs inline in this process (no pool, no
        pickling) -- the reference execution the parallel path must match.
    timeout_s:
        Per-run wall-clock budget, enforced inside the worker via
        ``SIGALRM`` (ignored on platforms/threads without it).
    retries:
        How many times a non-``ok`` run is re-executed before its last row
        is accepted.  Deterministic failures fail identically every
        attempt; the bound exists for runs killed by environmental noise
        (timeouts on a loaded box).
    """

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.spec = spec
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries

    # ------------------------------------------------------------- running

    def plan(self, strict: bool = True) -> List[PlannedRun]:
        return self.spec.expand(strict=strict)

    def run(
        self,
        jsonl: Union[None, str, Path, IO[str]] = None,
        progress: Optional[Progress] = None,
        strict: bool = True,
    ) -> Dict[str, Any]:
        """Execute all runs; returns the aggregate summary document.

        *jsonl* (path or open text handle) receives one row per finished
        run, written and flushed in completion order.  *progress* is called
        with ``(row, finished_count, total)`` after each run.  The full row
        list is available afterwards as :attr:`rows`.
        """
        runs = self.plan(strict=strict)
        payloads = [run.as_payload() for run in runs]
        for payload in payloads:
            payload["timeout_s"] = self.timeout_s

        sink: Optional[IO[str]] = None
        owns_sink = False
        if jsonl is not None:
            if hasattr(jsonl, "write"):
                sink = jsonl  # type: ignore[assignment]
            else:
                path = Path(jsonl)
                path.parent.mkdir(parents=True, exist_ok=True)
                sink = path.open("w")
                owns_sink = True

        rows: List[Dict[str, Any]] = []

        def finish(row: Dict[str, Any]) -> None:
            rows.append(row)
            if sink is not None:
                sink.write(json.dumps(row, sort_keys=True) + "\n")
                sink.flush()
            if progress is not None:
                progress(row, len(rows), len(runs))

        try:
            if self.workers == 1:
                self._run_inline(payloads, finish)
            else:
                self._run_pool(payloads, finish)
        finally:
            if owns_sink and sink is not None:
                sink.close()

        self.rows = rows
        return aggregate_rows(self.spec.name, rows)

    # ------------------------------------------------------------ backends

    def _attempts(self, payload: Dict[str, Any]) -> int:
        return self.retries + 1

    def _run_inline(
        self, payloads: List[Dict[str, Any]], finish: Callable
    ) -> None:
        for payload in payloads:
            row: Dict[str, Any] = {}
            for attempt in range(1, self._attempts(payload) + 1):
                row = execute_run(payload)
                row["attempts"] = attempt
                if row["status"] == "ok":
                    break
            finish(row)

    def _run_pool(
        self, payloads: List[Dict[str, Any]], finish: Callable
    ) -> None:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = {}
            for payload in payloads:
                future = pool.submit(execute_run, payload)
                pending[future] = (payload, 1)
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    payload, attempt = pending.pop(future)
                    try:
                        row = future.result()
                    except Exception as exc:  # worker process died
                        row = {
                            "run_id": payload["run_id"],
                            "index": payload["index"],
                            "replicate": payload["replicate"],
                            "seed": payload["seed"],
                            "params": payload["overrides"],
                            "status": "error",
                            "error": f"worker crashed: {exc}",
                            "error_type": type(exc).__name__,
                        }
                    if row["status"] != "ok" and attempt <= self.retries:
                        retry = pool.submit(execute_run, payload)
                        pending[retry] = (payload, attempt + 1)
                        continue
                    row["attempts"] = attempt
                    finish(row)
