"""Executing a campaign: process pool, timeouts, retries, JSONL streaming.

:class:`Campaign` is the programmatic face of ``repro sweep``.  It expands
a :class:`~repro.campaign.spec.SweepSpec`, farms the runs out to a
``ProcessPoolExecutor`` (or runs them inline for ``workers=1``), retries
failed/timed-out runs up to a bound, and streams every finished row to a
JSONL sink the moment it completes -- a crashed campaign leaves all its
finished work on disk.

Determinism contract: row *content* is a pure function of the sweep
document (seeds are derived, wall-clock never enters a row), so any worker
count produces the same row set; only JSONL file order varies with
completion order.  The aggregate re-sorts by run index first and is
therefore byte-identical across worker counts -- the property
``benchmarks/bench_campaign.py`` asserts while measuring scaling.

Observability (PR 6) threads through here without touching that contract:
the *run ledger* records only deterministic identity/outcome fields, the
wall-clock-bearing telemetry each worker measures rides back on the row's
``_telemetry`` side channel and is stripped before the row is written or
aggregated, and heartbeats stream to a separate status file.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Union

from repro.core.errors import SimulationError

from .pareto import aggregate_rows
from .spec import PlannedRun, SweepSpec
from .worker import execute_run

__all__ = ["Campaign", "pool_context", "worker_init"]

Progress = Callable[[Dict[str, Any], int, int], None]


def pool_context() -> multiprocessing.context.BaseContext:
    """The explicit multiprocessing context campaign pools run under.

    ``fork`` where the platform offers it (cheap, and the worker payload
    is picklable either way), ``spawn`` elsewhere -- but always *chosen*,
    never the interpreter default, so behaviour cannot silently change
    with the Python version's default start method.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def worker_init() -> None:
    """Pool-worker initializer: drop state a fork must not inherit.

    A forked child starts with the parent's ``repro.sim.fastpath``
    module-level cache (``_cached``/``_module``) and whatever backend the
    parent happened to resolve; every worker re-resolves from its own
    environment instead, and the backend it actually ran is recorded on
    each row and asserted by the runner.
    """
    from repro.sim import fastpath

    fastpath.reset()


class Campaign:
    """Execute every run of a sweep and aggregate the results.

    Parameters
    ----------
    spec:
        The sweep to execute.
    workers:
        Process count.  ``1`` runs inline in this process (no pool, no
        pickling) -- the reference execution the parallel path must match.
    timeout_s:
        Per-run wall-clock budget, enforced inside the worker via
        ``SIGALRM`` (ignored on platforms/threads without it).
    retries:
        How many times a non-``ok`` run is re-executed before its last row
        is accepted.  Deterministic failures fail identically every
        attempt; the bound exists for runs killed by environmental noise
        (timeouts on a loaded box).  Earlier attempts are never silently
        overwritten: the accepted row carries ``attempts`` plus an
        ``attempt_history`` of every prior attempt's outcome.
    event_budget:
        Deterministic per-run kill switch: abort a run (status
        ``timeout``) once its kernel has fired this many events.  Unlike
        ``timeout_s`` this trips at the same simulation point on every
        host and worker count, so the resulting rows, ledger records and
        flight dumps are byte-identical wherever the sweep runs.
    status_file:
        Heartbeat stream (JSONL) shared by the runner and all workers;
        render it live with ``repro tail``.
    ledger:
        Path for the append-only run ledger (JSONL, deterministic
        content; see :class:`repro.obs.campaign.LedgerWriter`).
    flight_dir:
        Directory for flight-recorder post-mortems.  When set, every
        worker arms a :class:`~repro.obs.flight.FlightRecorder` and each
        failed attempt dumps its last kernel events there.
    heartbeat_interval_ns:
        Simulation-time spacing of worker heartbeats (default: one
        eighth of the scenario duration).
    """

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        event_budget: Optional[int] = None,
        status_file: Union[None, str, Path] = None,
        ledger: Union[None, str, Path] = None,
        flight_dir: Union[None, str, Path] = None,
        heartbeat_interval_ns: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if event_budget is not None and event_budget < 1:
            raise ValueError(
                f"event_budget must be >= 1, got {event_budget}"
            )
        self.spec = spec
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.event_budget = event_budget
        self.status_file = status_file
        self.ledger = ledger
        self.flight_dir = flight_dir
        self.heartbeat_interval_ns = heartbeat_interval_ns
        #: Per-attempt telemetry digests, populated by :meth:`run`.
        self.telemetry: List[Dict[str, Any]] = []
        #: Straggler/anomaly flags over :attr:`telemetry`.
        self.stragglers: List[Dict[str, Any]] = []

    # ------------------------------------------------------------- running

    def plan(self, strict: bool = True) -> List[PlannedRun]:
        return self.spec.expand(strict=strict)

    def run(
        self,
        jsonl: Union[None, str, Path, IO[str]] = None,
        progress: Optional[Progress] = None,
        strict: bool = True,
    ) -> Dict[str, Any]:
        """Execute all runs; returns the aggregate summary document.

        *jsonl* (path or open text handle) receives one row per finished
        run, written and flushed in completion order.  *progress* is called
        with ``(row, finished_count, total)`` after each run.  The full row
        list is available afterwards as :attr:`rows`.
        """
        from repro.obs.campaign import (
            HeartbeatWriter,
            LedgerWriter,
            flag_stragglers,
        )

        runs = self.plan(strict=strict)
        payloads = [run.as_payload() for run in runs]
        status_path = (
            str(self.status_file) if self.status_file is not None else None
        )
        flight_dir = (
            str(self.flight_dir) if self.flight_dir is not None else None
        )
        for payload in payloads:
            payload["timeout_s"] = self.timeout_s
            payload["event_budget"] = self.event_budget
            payload["status_file"] = status_path
            payload["flight_dir"] = flight_dir
            payload["heartbeat_interval_ns"] = self.heartbeat_interval_ns

        sink: Optional[IO[str]] = None
        owns_sink = False
        if jsonl is not None:
            if hasattr(jsonl, "write"):
                sink = jsonl  # type: ignore[assignment]
            else:
                path = Path(jsonl)
                path.parent.mkdir(parents=True, exist_ok=True)
                sink = path.open("w")
                owns_sink = True

        ledger = None
        if self.ledger is not None:
            ledger = LedgerWriter(
                self.ledger,
                sweep=self.spec.name,
                spec_hash=self.spec.spec_hash(),
                runs=len(runs),
            )
        status = None
        if status_path is not None:
            status = HeartbeatWriter(status_path)
            status.write(
                {
                    "hb": "sweep",
                    "sweep": self.spec.name,
                    "spec_hash": self.spec.spec_hash(),
                    "total": len(runs),
                    "workers": self.workers,
                    "t": time.time(),
                }
            )

        rows: List[Dict[str, Any]] = []
        self.telemetry = []
        status_counts: Dict[str, int] = {}
        # The backend this process resolves from its own environment; a
        # worker reporting anything else ran on inherited (stale) state.
        from repro.sim.kernel import Simulator

        expected_backend = Simulator().backend

        def finish(row: Dict[str, Any]) -> None:
            telemetry = row.pop("_telemetry", None)
            backend = (telemetry or {}).get("backend")
            if backend is not None and backend != expected_backend:
                raise SimulationError(
                    f"run {row.get('run_id')} executed on kernel backend "
                    f"{backend!r} but this campaign resolves to "
                    f"{expected_backend!r}; a worker is running on "
                    f"inherited backend state"
                )
            if telemetry is not None:
                self.telemetry.append(telemetry)
            status_counts[row["status"]] = (
                status_counts.get(row["status"], 0) + 1
            )
            if ledger is not None:
                ledger.record_run(row)
            rows.append(row)
            if sink is not None:
                sink.write(json.dumps(row, sort_keys=True) + "\n")
                sink.flush()
            if progress is not None:
                progress(row, len(rows), len(runs))

        try:
            if self.workers == 1:
                self._run_inline(payloads, finish)
            else:
                self._run_pool(payloads, finish)
        finally:
            if ledger is not None:
                ledger.close(status_counts)
            if status is not None:
                status.write(
                    {
                        "hb": "sweep_end",
                        "sweep": self.spec.name,
                        "t": time.time(),
                        "status": status_counts,
                    }
                )
                status.close()
            if owns_sink and sink is not None:
                sink.close()

        self.stragglers = flag_stragglers(self.telemetry)
        self.rows = rows
        return aggregate_rows(self.spec.name, rows)

    # ------------------------------------------------------------ backends

    def _attempts(self, payload: Dict[str, Any]) -> int:
        return self.retries + 1

    def _collect_telemetry(self, row: Dict[str, Any]) -> None:
        """Harvest a *retried* attempt's telemetry before it is replaced.

        The accepted attempt's telemetry is popped in ``finish``; failed
        attempts would otherwise vanish -- and a straggler analysis that
        cannot see the timed-out first attempt is useless.
        """
        telemetry = row.pop("_telemetry", None)
        if telemetry is not None:
            self.telemetry.append(telemetry)

    @staticmethod
    def _attempt_record(row: Dict[str, Any], attempt: int) -> Dict[str, Any]:
        """The retry-lineage digest of one superseded attempt."""
        record: Dict[str, Any] = {
            "attempt": attempt,
            "status": row["status"],
        }
        if row.get("error") is not None:
            record["error"] = row["error"]
        if row.get("flight_dump") is not None:
            record["flight_dump"] = row["flight_dump"]
        return record

    def _run_inline(
        self, payloads: List[Dict[str, Any]], finish: Callable
    ) -> None:
        for payload in payloads:
            row: Dict[str, Any] = {}
            history: List[Dict[str, Any]] = []
            for attempt in range(1, self._attempts(payload) + 1):
                row = execute_run(dict(payload, attempt=attempt))
                row["attempts"] = attempt
                if row["status"] == "ok" or attempt > self.retries:
                    break
                history.append(self._attempt_record(row, attempt))
                self._collect_telemetry(row)
            if history:
                row["attempt_history"] = history
            finish(row)

    def _run_pool(
        self, payloads: List[Dict[str, Any]], finish: Callable
    ) -> None:
        with ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=pool_context(),
            initializer=worker_init,
        ) as pool:
            pending = {}
            for payload in payloads:
                payload = dict(payload, attempt=1)
                future = pool.submit(execute_run, payload)
                pending[future] = (payload, 1, [])
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    payload, attempt, history = pending.pop(future)
                    try:
                        row = future.result()
                    except Exception as exc:  # worker process died
                        row = {
                            "run_id": payload["run_id"],
                            "index": payload["index"],
                            "replicate": payload["replicate"],
                            "seed": payload["seed"],
                            "params": payload["overrides"],
                            "status": "error",
                            "error": f"worker crashed: {exc}",
                            "error_type": type(exc).__name__,
                        }
                    if row["status"] != "ok" and attempt <= self.retries:
                        history = history + [
                            self._attempt_record(row, attempt)
                        ]
                        self._collect_telemetry(row)
                        payload = dict(payload, attempt=attempt + 1)
                        retry = pool.submit(execute_run, payload)
                        pending[retry] = (payload, attempt + 1, history)
                        continue
                    row["attempts"] = attempt
                    if history:
                        row["attempt_history"] = history
                    finish(row)
