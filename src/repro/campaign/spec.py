"""Sweep specifications: one document describing many scenarios.

A sweep document holds a ``base`` scenario plus a ``grid`` of dotted-path
overrides and/or an explicit ``list`` of override objects::

    {
      "name": "star-depth-sweep",
      "base": { ...any ScenarioSpec document, "name" optional... },
      "grid": {
        "flows.ts_count": [64, 256, 1024],
        "config.queue_depth": [8, 12, 16]
      },
      "list": [ {"topology.kind": "linear"} ],
      "seeds": 2
    }

``grid`` expands as a cross product (9 points above); ``list`` appends
hand-picked points; ``seeds`` replicates every point with a distinct,
deterministically derived seed.  Expansion is pure and ordered: the same
document always yields the same :class:`PlannedRun` sequence, so run ids,
derived seeds and aggregates are reproducible regardless of how (or where)
the runs later execute.

Paths are dotted keys into the scenario document (``slot_us``,
``flows.ts_count``, ``config.queue_depth``, ``topology.kind``, ...).  An
override whose path descends into ``config`` requires ``base.config`` to be
an explicit object -- sweeping a parameter of a *derived* configuration is
ambiguous, and the error says so.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.errors import ConfigurationError, SpecValidationError
from repro.network.scenario import validate_scenario_dict

__all__ = ["SweepSpec", "PlannedRun", "derive_seed", "set_path"]

_KNOWN_SWEEP_KEYS = frozenset({"name", "base", "grid", "list", "seeds"})


def derive_seed(campaign: str, base_seed: int, signature: str) -> int:
    """A deterministic 63-bit seed for one run of one campaign.

    Mixing the campaign name, the base scenario seed and the run's override
    signature through SHA-256 gives every grid point (and every replicate)
    an independent stream while keeping the whole campaign a pure function
    of its document -- rerunning with any worker count reproduces the exact
    same per-run seeds.
    """
    digest = hashlib.sha256(
        f"{campaign}|{base_seed}|{signature}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def set_path(tree: Dict[str, Any], path: str, value: Any) -> None:
    """Set a dotted-path override inside a (nested) scenario dict."""
    keys = path.split(".")
    node = tree
    for i, key in enumerate(keys[:-1]):
        child = node.get(key)
        if child is None:
            child = node[key] = {}
        elif not isinstance(child, dict):
            prefix = ".".join(keys[: i + 1])
            hint = (
                "; sweeping a derived config is ambiguous -- give base.config "
                "as an explicit object"
                if prefix == "config" and child == "derive"
                else ""
            )
            raise ConfigurationError(
                f"grid path {path!r}: {prefix!r} is {child!r}, not an "
                f"object{hint}"
            )
        node = child
    node[keys[-1]] = value


@dataclass(frozen=True)
class PlannedRun:
    """One fully expanded scenario, ready to execute."""

    index: int
    run_id: str
    overrides: Dict[str, Any]
    replicate: int
    seed: int
    scenario: Dict[str, Any]

    def as_payload(self) -> Dict[str, Any]:
        """The picklable unit of work shipped to a worker process."""
        return {
            "index": self.index,
            "run_id": self.run_id,
            "overrides": self.overrides,
            "replicate": self.replicate,
            "seed": self.seed,
            "scenario": self.scenario,
        }


@dataclass
class SweepSpec:
    """A declarative sweep over scenario space."""

    name: str
    base: Dict[str, Any]
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    points: List[Dict[str, Any]] = field(default_factory=list)
    seeds: int = 1

    # ------------------------------------------------------------- parsing

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], strict: bool = True
    ) -> "SweepSpec":
        if not isinstance(data, Mapping):
            raise SpecValidationError(
                "sweep", [f"$: expected an object, got {type(data).__name__}"]
            )
        problems: List[str] = []
        for key in sorted(set(data) - _KNOWN_SWEEP_KEYS):
            problems.append(f"{key}: unknown sweep key")
        name = data.get("name")
        if not isinstance(name, str) or not name:
            problems.append("name: required non-empty string")
        base = data.get("base")
        if not isinstance(base, Mapping):
            problems.append("base: required object (a scenario document)")
            base = {}
        grid = data.get("grid", {})
        if not isinstance(grid, Mapping):
            problems.append("grid: expected an object of path -> value list")
            grid = {}
        else:
            for path, values in grid.items():
                if not isinstance(values, Sequence) or isinstance(
                    values, (str, bytes)
                ) or not values:
                    problems.append(
                        f"grid.{path}: expected a non-empty list of values"
                    )
        points = data.get("list", [])
        if not isinstance(points, Sequence) or isinstance(points, (str, bytes)):
            problems.append("list: expected a list of override objects")
            points = []
        else:
            for i, point in enumerate(points):
                if not isinstance(point, Mapping):
                    problems.append(f"list[{i}]: expected an override object")
        seeds = data.get("seeds", 1)
        if not isinstance(seeds, int) or isinstance(seeds, bool) or seeds < 1:
            problems.append(f"seeds: expected a positive integer, got {seeds!r}")
            seeds = 1
        if problems and strict:
            raise SpecValidationError(f"sweep {data.get('name', '?')!r}", problems)
        return cls(
            name=name if isinstance(name, str) else "sweep",
            base=dict(base),
            grid={k: list(v) for k, v in grid.items()
                  if isinstance(v, Sequence) and not isinstance(v, (str, bytes))},
            points=[dict(p) for p in points if isinstance(p, Mapping)],
            seeds=seeds,
        )

    @classmethod
    def from_json(cls, text: str, strict: bool = True) -> "SweepSpec":
        return cls.from_dict(json.loads(text), strict=strict)

    @classmethod
    def from_file(
        cls, path: Union[str, Path], strict: bool = True
    ) -> "SweepSpec":
        return cls.from_json(Path(path).read_text(), strict=strict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "base": self.base}
        if self.grid:
            data["grid"] = self.grid
        if self.points:
            data["list"] = self.points
        if self.seeds != 1:
            data["seeds"] = self.seeds
        return data

    def spec_hash(self) -> str:
        """Digest pinning a run ledger to this exact sweep document."""
        from repro.obs.campaign import sweep_spec_hash

        return sweep_spec_hash(self.to_dict())

    # ----------------------------------------------------------- expansion

    def override_sets(self) -> List[Dict[str, Any]]:
        """Grid cross product (insertion-ordered) plus the explicit list."""
        combos: List[Dict[str, Any]] = []
        if self.grid:
            paths = list(self.grid)
            for values in itertools.product(*(self.grid[p] for p in paths)):
                combos.append(dict(zip(paths, values)))
        elif not self.points:
            combos.append({})  # a bare base is a 1-point sweep
        combos.extend(dict(point) for point in self.points)
        return combos

    def expand(self, strict: bool = True) -> List[PlannedRun]:
        """Expand into concrete runs; validates every materialized scenario.

        With *strict*, each expanded scenario document is checked via
        :func:`~repro.network.scenario.validate_scenario_dict` and all
        problems across all runs raise as one
        :class:`~repro.core.errors.SpecValidationError`.
        """
        runs: List[PlannedRun] = []
        problems: List[str] = []
        base_seed = self.base.get("seed", 0)
        base_name = self.base.get("name", self.name)
        index = 0
        for overrides in self.override_sets():
            signature = json.dumps(overrides, sort_keys=True)
            for replicate in range(self.seeds):
                scenario = json.loads(json.dumps(self.base))  # deep copy
                scenario.setdefault("name", base_name)
                for path, value in overrides.items():
                    set_path(scenario, path, value)
                run_id = f"{self.name}:{index:04d}"
                scenario["name"] = f"{base_name}#{index:04d}"
                if "seed" in overrides:
                    seed = overrides["seed"]
                else:
                    seed = derive_seed(
                        self.name, base_seed, f"{signature}|rep={replicate}"
                    )
                scenario["seed"] = seed
                if strict:
                    for problem in validate_scenario_dict(scenario):
                        problems.append(f"run {run_id}: {problem}")
                runs.append(
                    PlannedRun(
                        index=index,
                        run_id=run_id,
                        overrides=dict(overrides),
                        replicate=replicate,
                        seed=seed,
                        scenario=scenario,
                    )
                )
                index += 1
        if problems:
            raise SpecValidationError(f"sweep {self.name!r}", problems)
        return runs
