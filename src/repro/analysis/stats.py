"""Sweep containers and statistics helpers for the experiment harness.

The benchmarks regenerate the paper's figures as *series*: an x-axis
(hops, packet size, slot size, background load) against latency summaries.
:class:`SweepSeries` is that structure plus shape checks the harness
asserts on (monotonicity, flatness, bound containment) -- the quantitative
version of "who wins, by roughly what factor, where crossovers fall".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.errors import SimulationError
from repro.network.analyzer import LatencySummary

__all__ = ["SweepPoint", "SweepSeries", "relative_spread"]


@dataclass(frozen=True)
class SweepPoint:
    """One x-position of a figure: its latency summary and loss rate."""

    x: float
    label: str
    summary: LatencySummary
    loss: float = 0.0

    @property
    def mean_us(self) -> float:
        return self.summary.mean_ns / 1000.0

    @property
    def jitter_us(self) -> float:
        return self.summary.jitter_ns / 1000.0


@dataclass
class SweepSeries:
    """One curve of a figure."""

    name: str
    xlabel: str
    points: List[SweepPoint] = field(default_factory=list)

    def add(self, point: SweepPoint) -> None:
        self.points.append(point)

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    @property
    def means_ns(self) -> List[float]:
        return [p.summary.mean_ns for p in self.points]

    @property
    def jitters_ns(self) -> List[float]:
        return [p.summary.jitter_ns for p in self.points]

    @property
    def losses(self) -> List[float]:
        return [p.loss for p in self.points]

    # ----------------------------------------------------------- shape checks

    def is_monotonic_increasing(self, key: str = "mean") -> bool:
        """Means (or jitters) never decrease along the sweep."""
        values = self.means_ns if key == "mean" else self.jitters_ns
        return all(b >= a for a, b in zip(values, values[1:]))

    def is_flat(self, key: str = "mean", tolerance: float = 0.05) -> bool:
        """Max relative deviation from the series mean stays in tolerance.

        This is Fig 2 / Fig 7(d)'s claim -- background load does not move TS
        latency -- made checkable.
        """
        values = self.means_ns if key == "mean" else self.jitters_ns
        return relative_spread(values) <= tolerance

    def scaling_factor(self) -> float:
        """last mean / first mean -- the "increased manyfold" observation."""
        if len(self.points) < 2:
            raise SimulationError("need at least two points for a scaling factor")
        first = self.points[0].summary.mean_ns
        if first == 0:
            raise SimulationError("first point has zero mean latency")
        return self.points[-1].summary.mean_ns / first


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / mean of *values*; 0.0 for constant series."""
    if not values:
        raise SimulationError("no values")
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    return (max(values) - min(values)) / mean
