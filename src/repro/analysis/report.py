"""Paper-style text rendering of resource reports and sweep series.

The benchmark harness prints the same rows/series the paper reports:
:func:`render_table3` reproduces the layout of Table III (resource rows x
configuration columns with reduction percentages), :func:`render_table1`
the motivation table, and :func:`render_series` the data behind each Fig. 7
panel.  Everything is plain monospace text so diffs against
``EXPERIMENTS.md`` stay reviewable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.resources import ResourceReport
from .stats import SweepSeries

__all__ = [
    "render_table",
    "render_table1",
    "render_table3",
    "render_series",
    "render_metrics",
    "render_slo",
    "render_faults",
    "render_headroom",
    "render_port_occupancy",
]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Align *rows* under *headers* with two-space gutters.

    Column widths come from the data as well as the headers, so a cell
    longer than its header (a long flow name in a metrics label, say)
    widens its column instead of breaking the alignment; rows with more
    cells than headers get extra unlabeled columns rather than silent
    truncation.  Lines carry no trailing padding.
    """
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    padded_headers = list(headers) + [""] * (len(widths) - len(headers))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(
            h.ljust(w) for h, w in zip(padded_headers, widths)
        ).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def _fmt_params(params: Sequence[int]) -> str:
    return ", ".join(str(p) for p in params)


def render_table3(
    baseline: ResourceReport, customized: Sequence[ResourceReport]
) -> str:
    """The paper's Table III: rows per resource, columns per configuration."""
    headers = ["Resource Type", f"{baseline.title} params", "BRAMs"]
    for report in customized:
        headers.extend([f"{report.title} params", "BRAMs"])
    rows: List[List[str]] = []
    for base_row in baseline.rows:
        row = [base_row.resource, _fmt_params(base_row.parameters),
               base_row.kb_label]
        for report in customized:
            other = report.row(base_row.resource)
            row.extend([_fmt_params(other.parameters), other.kb_label])
        rows.append(row)
    total = ["Total", "", f"{baseline.total_kb:g}Kb"]
    for report in customized:
        reduction = report.reduction_vs(baseline)
        total.extend(
            ["", f"{report.total_kb:g}Kb (-{reduction * 100:.2f}%)"]
        )
    rows.append(total)
    return render_table(headers, rows, title="Comparison of resource usage")


def render_table1(case1: ResourceReport, case2: ResourceReport) -> str:
    """The motivation table: queue/buffer parameters and total BRAM."""
    headers = ["", "Queue params", "Buffer params", "Total BRAMs"]
    rows = []
    for report in (case1, case2):
        queues = report.row("Queues")
        buffers = report.row("Buffers")
        total_kb = queues.kb + buffers.kb
        rows.append(
            [
                report.title,
                _fmt_params(queues.parameters),
                _fmt_params(buffers.parameters),
                f"{total_kb:g}Kb",
            ]
        )
    return render_table(headers, rows, title="Configuration of queue and packet buffer")


def _fmt_labels(labels: Dict[str, str]) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _snapshot_quantile(series: Dict[str, Any], q: float) -> Optional[float]:
    """Bucketed quantile estimate from one histogram-series snapshot."""
    count = series.get("count", 0)
    if not count:
        return None
    rank = max(1, round(q * count))
    seen = 0
    for bucket in series.get("buckets", ()):
        seen += bucket["count"]
        if seen >= rank:
            bound = bucket["le"]
            if bound == "inf":
                return series.get("max")
            return bound
    return series.get("max")


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """Pretty-print a :meth:`MetricsRegistry.snapshot` (``repro metrics``).

    One table per instrument kind: counters (value), gauges
    (value + high-water), histograms (count / mean / p50 / p95 / p99 / max,
    in microseconds since every histogram in the catalogue is nanoseconds).
    """
    counter_rows: List[List[str]] = []
    gauge_rows: List[List[str]] = []
    histogram_rows: List[List[str]] = []
    for name in sorted(snapshot):
        instrument = snapshot[name]
        for series in instrument.get("series", ()):
            labels = _fmt_labels(series.get("labels", {}))
            if instrument.get("kind") == "counter":
                counter_rows.append([name, labels, str(series["value"])])
            elif instrument.get("kind") == "gauge":
                gauge_rows.append(
                    [name, labels, f"{series['value']:g}",
                     f"{series['high_water']:g}"]
                )
            elif instrument.get("kind") == "histogram":
                # Prefer the snapshot's own estimates (present since the
                # percentile fields landed); fall back to re-deriving from
                # the buckets for older snapshot files on disk.
                p50 = series.get("p50", _snapshot_quantile(series, 0.50))
                p95 = series.get("p95", _snapshot_quantile(series, 0.95))
                p99 = series.get("p99", _snapshot_quantile(series, 0.99))
                histogram_rows.append(
                    [
                        name,
                        labels,
                        str(series["count"]),
                        f"{series['mean'] / 1000:.2f}",
                        "-" if p50 is None else f"{p50 / 1000:.2f}",
                        "-" if p95 is None else f"{p95 / 1000:.2f}",
                        "-" if p99 is None else f"{p99 / 1000:.2f}",
                        ("-" if series["max"] is None
                         else f"{series['max'] / 1000:.2f}"),
                    ]
                )
    sections: List[str] = []
    if counter_rows:
        sections.append(
            render_table(["counter", "labels", "value"], counter_rows,
                         title="Counters")
        )
    if gauge_rows:
        sections.append(
            render_table(["gauge", "labels", "value", "high water"],
                         gauge_rows, title="Gauges")
        )
    if histogram_rows:
        sections.append(
            render_table(
                ["histogram", "labels", "count", "mean(us)", "p50(us)",
                 "p95(us)", "p99(us)", "max(us)"],
                histogram_rows,
                title="Histograms",
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def _fmt_us(value_ns: Optional[float]) -> str:
    return "-" if value_ns is None else f"{value_ns / 1000:.2f}"


def render_slo(report: "SloReport", max_violations: int = 20) -> str:
    """Pretty-print an :class:`~repro.obs.slo.SloReport` (``repro slo``).

    A verdict table (one row per flow: delivery accounting, worst-case
    latency watermark, jitter, pass/fail with the breached bound kinds)
    followed by the first *max_violations* individual violations.
    """
    verdict_rows: List[List[str]] = []
    for flow_id, verdict in sorted(report.verdicts.items()):
        verdict_rows.append(
            [
                str(flow_id),
                verdict.traffic_class,
                str(verdict.expected),
                str(verdict.received),
                str(verdict.lost),
                str(verdict.duplicates),
                _fmt_us(verdict.max_latency_ns),
                _fmt_us(verdict.jitter_ns),
                str(verdict.deadline_misses),
                (
                    "PASS" if verdict.passed
                    else "FAIL " + ",".join(verdict.failures)
                ) if verdict.monitored or not verdict.passed else "-",
            ]
        )
    sections = [
        render_table(
            ["flow", "class", "expected", "received", "lost", "dup",
             "max lat(us)", "jitter(us)", "ddl miss", "verdict"],
            verdict_rows,
            title="Per-flow SLO verdicts",
        )
    ]
    violations = [
        violation
        for _, verdict in sorted(report.verdicts.items())
        for violation in verdict.violations
    ]
    if violations:
        rows = [
            [
                str(v.flow_id),
                v.kind,
                str(v.time_ns),
                str(v.seq) if v.seq >= 0 else "-",
                f"{v.observed:g}",
                f"{v.bound:g}",
            ]
            for v in violations[:max_violations]
        ]
        title = f"Violations (first {len(rows)} of {report.total_violations})"
        sections.append(
            render_table(
                ["flow", "kind", "time(ns)", "seq", "observed", "bound"],
                rows,
                title=title,
            )
        )
    status = "PASS" if report.passed else (
        f"FAIL: flows {', '.join(str(f) for f in report.failed_flows)} "
        f"in violation"
    )
    sections.append(
        f"SLO: {status} "
        f"({report.monitored}/{len(report.verdicts)} flows monitored, "
        f"{report.total_violations} violations)"
    )
    return "\n\n".join(sections)


def render_faults(report: "FaultReport") -> str:
    """Pretty-print a :class:`~repro.faults.FaultReport` (``repro faults``).

    The executed fault timeline, the per-link destruction counters, FRER
    elimination activity, and — when gPTP ran — the failover line
    (elections, detection+election latency, surviving grandmaster).
    """
    timeline_rows = [
        [
            f"{entry['time_ns'] / 1000:.1f}",
            entry["kind"],
            entry["target"],
            entry["detail"],
        ]
        for entry in report.timeline
    ]
    sections = [
        render_table(
            ["time(us)", "kind", "target", "detail"],
            timeline_rows or [["-", "-", "-", "(no events fired)"]],
            title="Fault timeline",
        )
    ]
    if report.links:
        link_rows = [
            [
                name,
                str(stats["carried"]),
                str(stats["blackholed"]),
                str(stats["fault_lost"]),
                str(stats["fault_corrupted"]),
                str(stats["down_count"]),
            ]
            for name, stats in sorted(report.links.items())
        ]
        sections.append(
            render_table(
                ["link", "carried", "blackholed", "lost", "corrupted",
                 "downs"],
                link_rows,
                title="Faulted links",
            )
        )
    if report.frer:
        frer_rows = [
            [listener, str(stats["eliminated"]), str(stats["rogue"])]
            for listener, stats in sorted(report.frer.items())
        ]
        sections.append(
            render_table(
                ["listener", "duplicates eliminated", "rogue"],
                frer_rows,
                title="FRER recovery",
            )
        )
    if report.gptp is not None:
        latencies = report.gptp["failover_latencies_ns"]
        latency = (
            f"{latencies[-1] / 1_000_000:.2f}ms failover"
            if latencies else "no failover needed"
        )
        sections.append(
            f"gPTP: {report.gptp['elections']} election(s), {latency}, "
            f"grandmaster now {report.gptp['grandmaster'] or '(none)'}, "
            f"max |offset| {report.gptp['max_abs_offset_ns']}ns"
        )
    sections.append(
        f"Frames lost in failover: {report.frames_lost_in_failover} "
        f"(FRER eliminated {report.frer_eliminated} duplicates)"
    )
    return "\n\n".join(sections)


def _fmt_mean(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}"


def render_headroom(report: "HeadroomReport") -> str:
    """Pretty-print a :class:`~repro.obs.headroom.HeadroomReport`.

    One row per (switch, structure): peak vs provisioned size, utilization,
    time-weighted mean (when probes ran), and the BRAM Kb provisioned /
    sufficient / wasted -- the costs recomputed through
    ``core.bram.allocate`` at the margined observed sizes.  Followed by the
    network totals and the cheapest sufficient configuration.
    """
    rows = []
    for entry in report.structures:
        rows.append(
            [
                entry.switch,
                entry.structure,
                f"{entry.peak}/{entry.provisioned}",
                f"{entry.utilization * 100:.1f}%",
                _fmt_mean(entry.mean),
                f"{entry.provisioned_kb:g}",
                f"{entry.sufficient_kb:g}",
                f"{entry.wasted_kb:+g}",
            ]
        )
    sections = [
        render_table(
            ["switch", "structure", "peak/size", "util", "twa mean",
             "prov Kb", "suff Kb", "wasted Kb"],
            rows,
            title="Resource headroom (observed vs provisioned)",
        )
    ]
    cheapest = report.cheapest_config
    sections.append(
        f"BRAM: provisioned {report.provisioned_kb:g}Kb, sufficient "
        f"{report.sufficient_kb:g}Kb, wasted {report.wasted_kb:+g}Kb "
        f"({(report.wasted_kb / report.provisioned_kb * 100) if report.provisioned_kb else 0.0:+.1f}%)"
    )
    sections.append(
        f"Cheapest sufficient config ({cheapest.port_num} ports): "
        f"queue_depth {cheapest.queue_depth}, buffer_num "
        f"{cheapest.buffer_num}, tables "
        f"unicast {cheapest.unicast_size} / class {cheapest.class_size} / "
        f"meter {cheapest.meter_size} / gate {cheapest.gate_size} -> "
        f"{report.cheapest_kb:g}Kb per switch"
    )
    return "\n\n".join(sections)


def render_port_occupancy(report: "HeadroomReport") -> str:
    """The per-port occupancy/drop table (``--drops`` and ``headroom``).

    Keeps the historical sizing-evidence columns (high-water vs size, drop
    counters) and appends the time-weighted mean occupancy columns when
    the run carried occupancy probes.
    """
    timeweighted = report.timeweighted
    rows = []
    for port in report.ports:
        row = [
            port.label,
            f"{port.queue_peak}/{port.queue_depth}",
            f"{port.buffer_peak}/{port.pool_slots}",
            str(port.tail_drops),
            str(port.gate_drops),
            str(port.pool_drops),
            str(port.preemptions),
        ]
        if timeweighted:
            row.extend(
                [_fmt_mean(port.queue_mean), _fmt_mean(port.buffer_mean)]
            )
        rows.append(row)
    headers = ["port", "queue hw", "buffer hw", "tail drops", "gate drops",
               "pool drops", "preemptions"]
    if timeweighted:
        headers.extend(["queue twa", "buffer twa"])
    return render_table(
        headers, rows, title="Per-port occupancy and drops"
    )


def render_series(series: SweepSeries, unit: str = "us") -> str:
    """One figure panel as a table of x -> mean/jitter/min/max/loss."""
    scale = 1000.0 if unit == "us" else 1.0
    headers = [series.xlabel, f"mean({unit})", f"jitter({unit})",
               f"min({unit})", f"max({unit})", "loss"]
    rows = []
    for point in series.points:
        s = point.summary
        rows.append(
            [
                point.label,
                f"{s.mean_ns / scale:.2f}",
                f"{s.jitter_ns / scale:.2f}",
                f"{s.min_ns / scale:.2f}",
                f"{s.max_ns / scale:.2f}",
                f"{point.loss:.4f}",
            ]
        )
    return render_table(headers, rows, title=series.name)
