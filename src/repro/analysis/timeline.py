"""ASCII timelines from trace records.

Turns the :class:`~repro.sim.trace.Tracer`'s gate/queue/tx records into a
monospace timeline -- the quickest way to *see* CQF working: gathering
queues swapping each slot, frames draining in the following slot, guard
bands holding background traffic back.  Used by tests and as a debugging
aid; nothing in the measurement path depends on it.

Example output (one port, two slots)::

    time(us)   0.0      62.5     125.0
    gate q6    OPEN---- close--- OPEN----
    gate q7    close--- OPEN---- close---
    tx         ..TTTT.. ..TTTT.. ........
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import SimulationError
from repro.sim.trace import TraceRecord

__all__ = ["GateTimeline", "gate_timeline", "render_timeline"]


@dataclass(frozen=True)
class GateTimeline:
    """Open intervals of one queue's gate, reconstructed from trace records."""

    name: str
    queue_id: int
    intervals: Tuple[Tuple[int, int], ...]  # [(open_ns, close_ns), ...)

    def open_at(self, time_ns: int) -> bool:
        return any(start <= time_ns < end for start, end in self.intervals)

    def total_open_ns(self) -> int:
        return sum(end - start for start, end in self.intervals)


def gate_timeline(
    records: Iterable[TraceRecord],
    gate_name: str,
    queue_id: int,
    until_ns: int,
    direction: str = "out",
) -> GateTimeline:
    """Reconstruct one queue's gate intervals from ``gate`` trace records.

    *gate_name* matches the engine name prefix in the trace message (e.g.
    ``"sw0.p0"``); *direction* selects the in- or out-gate records.
    """
    if direction not in ("in", "out"):
        raise SimulationError(f"direction must be 'in' or 'out', got {direction!r}")
    needle = f"{gate_name} {direction}-gates"
    transitions: List[Tuple[int, bool]] = []
    for record in records:
        if record.category != "gate" or record.message != needle:
            continue
        if record.time >= until_ns:
            continue  # drain-phase records beyond the window of interest
        fields = dict(record.fields)
        mask = int(fields["mask"], 2)
        transitions.append((record.time, bool(mask >> queue_id & 1)))
    if not transitions:
        raise SimulationError(
            f"no gate records for {gate_name!r} ({direction}); was the "
            "'gate' trace category enabled?"
        )
    transitions.sort(key=lambda t: t[0])
    intervals: List[Tuple[int, int]] = []
    open_since: Optional[int] = None
    for time, is_open in transitions:
        if is_open and open_since is None:
            open_since = time
        elif not is_open and open_since is not None:
            intervals.append((open_since, time))
            open_since = None
    if open_since is not None:
        intervals.append((open_since, until_ns))
    return GateTimeline(gate_name, queue_id, tuple(intervals))


def render_timeline(
    timelines: Sequence[GateTimeline],
    until_ns: int,
    columns: int = 64,
    tx_times: Optional[Dict[str, List[int]]] = None,
) -> str:
    """Render gate timelines (and optional tx instants) into ASCII rows.

    Each column covers ``until_ns / columns`` of simulated time; a gate
    cell shows ``#`` when open for most of the column, ``-`` otherwise; a
    tx row marks columns containing at least one transmission with ``T``.
    """
    if until_ns <= 0 or columns <= 0:
        raise SimulationError("until_ns and columns must be positive")
    cell_ns = max(1, until_ns // columns)
    label_width = max(
        [len(f"{t.name} q{t.queue_id}") for t in timelines]
        + [len(name) for name in (tx_times or {})]
        + [len("time(us)")]
    )
    lines = []
    header = "time(us)".ljust(label_width) + " "
    marks = {0, columns // 2, columns - 1}
    cursor = 0
    for column in range(columns):
        if column in marks:
            label = f"{column * cell_ns / 1000:g}"
            header += label
            cursor = len(label)
        elif cursor > 1:
            cursor -= 1
        else:
            header += "."
    lines.append(header)
    for timeline in timelines:
        cells = []
        for column in range(columns):
            mid = column * cell_ns + cell_ns // 2
            cells.append("#" if timeline.open_at(mid) else "-")
        lines.append(
            f"{timeline.name} q{timeline.queue_id}".ljust(label_width)
            + " "
            + "".join(cells)
        )
    for name, times in (tx_times or {}).items():
        cells = ["."] * columns
        for time in times:
            index = min(columns - 1, time // cell_ns)
            cells[index] = "T"
        lines.append(name.ljust(label_width) + " " + "".join(cells))
    return "\n".join(lines)
