"""Exporting results: CSV series, latency distributions, JSON summaries.

The rendering module (:mod:`repro.analysis.report`) targets humans; this one
targets plotting scripts and archival.  Everything writes plain CSV/JSON so
downstream tooling needs no dependency on this package.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.traffic.flows import TrafficClass
from .stats import SweepSeries

__all__ = [
    "series_to_csv",
    "latencies_to_csv",
    "latency_cdf",
    "result_summary",
    "write_summary_json",
]

PathLike = Union[str, Path]


def series_to_csv(series: SweepSeries, path: PathLike) -> Path:
    """One row per sweep point: x, mean, jitter, min, max, p99, loss (ns)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [series.xlabel, "mean_ns", "jitter_ns", "min_ns", "max_ns",
             "p99_ns", "loss"]
        )
        for point in series.points:
            summary = point.summary
            writer.writerow(
                [point.x, summary.mean_ns, summary.jitter_ns, summary.min_ns,
                 summary.max_ns, summary.p99_ns, point.loss]
            )
    return path


def latencies_to_csv(result, traffic_class: TrafficClass, path: PathLike) -> Path:
    """Per-packet latencies of one class from a ScenarioResult."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["flow_id", "latency_ns"])
        for flow in result.flows.by_class(traffic_class):
            record = result.analyzer.records[flow.flow_id]
            for latency in record.latencies_ns:
                writer.writerow([flow.flow_id, latency])
    return path


def latency_cdf(latencies: List[int], points: int = 100) -> List[Dict[str, float]]:
    """An empirical CDF sampled at *points* evenly spaced quantiles."""
    if not latencies:
        return []
    ordered = sorted(latencies)
    count = len(ordered)
    cdf = []
    for i in range(points + 1):
        quantile = i / points
        index = min(count - 1, int(quantile * count))
        cdf.append({"q": quantile, "latency_ns": float(ordered[index])})
    return cdf


def result_summary(result) -> Dict:
    """A JSON-compatible digest of one ScenarioResult.

    Runs executed with a :class:`~repro.obs.metrics.MetricsRegistry`
    attached additionally embed the full registry snapshot under
    ``"metrics"`` and the kernel's calendar accounting under ``"sim"``.
    """
    summary: Dict = {
        "duration_ns": result.duration_ns,
        "slot_ns": result.slot_ns,
        "classes": result.analyzer.class_digest(result.expected_by_flow),
        "switch_counters": result.counters(),
        "max_queue_high_water": result.max_queue_high_water(),
        "max_buffer_high_water": result.max_buffer_high_water(),
    }
    metrics = getattr(result, "metrics", None)
    if metrics is not None:
        summary["metrics"] = metrics.snapshot()
    sim_stats = getattr(result, "sim_stats", None)
    if sim_stats:
        summary["sim"] = dict(sim_stats)
    slo = getattr(result, "slo", None)
    if slo is not None:
        summary["slo"] = slo.as_dict()
    faults = getattr(result, "faults", None)
    if faults is not None:
        summary["faults"] = faults.as_dict()
    if getattr(result, "headroom", None) is not None:
        summary["headroom"] = result.headroom_report().as_dict()
    if result.itp_plan is not None:
        summary["itp"] = {
            "max_frames_per_slot": result.itp_plan.max_frames_per_slot,
            "load_balance_ratio": result.itp_plan.load_balance_ratio(),
        }
    if getattr(result, "sched_plan", None) is not None:
        summary["sched"] = result.sched_plan.summary()
    return summary


def write_summary_json(result, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(json.dumps(result_summary(result), indent=2,
                               sort_keys=True))
    return path
