"""Per-device local clocks with frequency drift.

Real TSN devices derive their notion of time from a free-running local
oscillator whose frequency deviates from nominal by tens of ppm.  gPTP's job
(:mod:`repro.timesync`) is to discipline these local clocks to a grandmaster
so gate schedules align network-wide.

:class:`LocalClock` maps *perfect* simulation time to *local* time as a
piecewise-linear function:

    local(t) = base_local + (t - base_sim) * rate

where ``rate = 1 + drift_ppm * 1e-6 + servo rate correction``.  The servo can
step the phase (``step``) and slew the rate (``adjust_rate``); each
adjustment starts a new linear segment anchored at the current instant, so
time never jumps retroactively.

Arithmetic is done in exact :class:`fractions.Fraction` ticks to keep the
clock model bit-reproducible (no float accumulation error over long runs);
reads are rounded to integer nanoseconds.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Optional

from repro.core.errors import SimulationError
from .kernel import Simulator

__all__ = ["LocalClock", "PerfectClock"]


class LocalClock:
    """A drifting local oscillator, disciplinable by a servo.

    Parameters
    ----------
    sim:
        The simulator supplying perfect time.
    drift_ppm:
        Constant oscillator frequency error in parts-per-million.  +10 means
        the local clock runs fast by 10 us per second.
    offset_ns:
        Initial phase offset of the local clock (local - perfect at t=0).
    """

    def __init__(
        self,
        sim: Simulator,
        drift_ppm: float = 0.0,
        offset_ns: int = 0,
    ) -> None:
        self._sim = sim
        self._base_sim = sim.now
        self._base_local = Fraction(sim.now + offset_ns)
        self._nominal_rate = Fraction(1) + Fraction(drift_ppm).limit_denominator(
            10**9
        ) / Fraction(10**6)
        self._rate_correction = Fraction(0)
        self.drift_ppm = drift_ppm
        self._rate_listeners: List[Callable[[], None]] = []

    # ------------------------------------------------------------- reading

    def _local_exact(self, sim_time: Optional[int] = None) -> Fraction:
        t = self._sim.now if sim_time is None else sim_time
        if t < self._base_sim:
            raise SimulationError("cannot read clock before its last adjustment")
        return self._base_local + (t - self._base_sim) * self.rate

    @property
    def rate(self) -> Fraction:
        """Current local-seconds-per-perfect-second ratio."""
        return self._nominal_rate + self._rate_correction

    @property
    def nominal_rate(self) -> Fraction:
        """The free-running oscillator rate (before servo correction)."""
        return self._nominal_rate

    @property
    def rate_correction_ppm(self) -> float:
        """The servo's currently applied rate correction, in ppm."""
        return float(self._rate_correction) * 1e6

    def now(self) -> int:
        """Local time in integer nanoseconds at the current sim instant."""
        return round(self._local_exact())

    def offset_from_perfect(self) -> int:
        """Signed error of this clock vs perfect simulation time (ns)."""
        return self.now() - self._sim.now

    # ---------------------------------------------------------- adjustment

    def _rebase(self) -> None:
        self._base_local = self._local_exact()
        self._base_sim = self._sim.now

    def step(self, delta_ns: int) -> None:
        """Step the local phase by *delta_ns* (positive = advance)."""
        self._rebase()
        self._base_local += delta_ns

    def set_drift_ppm(self, drift_ppm: float) -> None:
        """Change the oscillator's *free-running* frequency error.

        Models a frequency-step fault (thermal shock, oscillator aging):
        the nominal rate changes mid-run while any servo correction stays
        in place, so the disciplined clock starts accumulating phase error
        until its servo notices.  Rate-change listeners are notified like
        for :meth:`adjust_rate` so interval caches rebuild.
        """
        self._rebase()
        self._nominal_rate = Fraction(1) + Fraction(drift_ppm).limit_denominator(
            10**9
        ) / Fraction(10**6)
        self.drift_ppm = drift_ppm
        for listener in self._rate_listeners:
            listener()

    def adjust_rate(self, correction_ppm: float) -> None:
        """Set the servo's rate correction (replaces any previous one)."""
        self._rebase()
        self._rate_correction = Fraction(correction_ppm).limit_denominator(
            10**9
        ) / Fraction(10**6)
        for listener in self._rate_listeners:
            listener()

    def on_rate_change(self, listener: Callable[[], None]) -> None:
        """Register *listener* to run after every :meth:`adjust_rate`.

        Consumers that precompute local->sim interval conversions (the
        gate engine's window tables) subscribe here to rebuild when the
        servo slews the rate.  Phase steps need no notification: interval
        conversion depends on the rate only.
        """
        self._rate_listeners.append(listener)

    def sim_delay_for_local(self, local_delta_ns: int) -> int:
        """Perfect-time delay corresponding to *local_delta_ns* local ns.

        Used to schedule periodic local-time activities (e.g. gPTP sync
        transmission every 125 ms of *local* time) on the perfect-time
        calendar.  Rounded to at least 1 ns so periodic processes always make
        progress.
        """
        if local_delta_ns <= 0:
            raise SimulationError("local delay must be positive")
        exact = Fraction(local_delta_ns) / self.rate
        return max(1, round(exact))


class PerfectClock(LocalClock):
    """A drift-free clock: always equal to simulation time."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim, drift_ppm=0.0, offset_ns=0)
