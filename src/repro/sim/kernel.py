"""Discrete-event simulation kernel.

A deliberately small, fast core: a binary-heap calendar of ``(time, priority,
sequence)``-ordered events whose actions are plain Python callables.  All
times are integer nanoseconds (see :mod:`repro.core.units`).

Determinism: events at the same timestamp fire in (priority, insertion)
order, so two runs of the same scenario produce identical traces.  The
testbed relies on this to make latency distributions reproducible under a
fixed RNG seed.

This style (callbacks, not coroutines) was chosen over a simpy-like process
model because the switch dataplane is naturally event-shaped -- "frame fully
received", "gate state flips", "serialization done" -- and the kernel stays
trivially inspectable.

Observability: every kernel counts scheduling activity in :class:`SimStats`
(events scheduled/fired/cancelled and the calendar's high-water mark --
plain integer bumps, always on).  Wall-clock attribution of event actions
is opt-in: pass a :class:`repro.obs.profiler.WallClockProfiler` and each
action's host-CPU time is recorded under its qualified name.  With the
default ``profiler=None`` the run loop performs **no** clock reads at all.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import SimulationError

__all__ = ["Simulator", "EventHandle", "SimStats"]

Action = Callable[[], Any]


@dataclass
class SimStats:
    """Always-on calendar accounting of one kernel."""

    scheduled: int = 0            # schedule()/schedule_at() calls
    fired: int = 0                # actions actually executed
    cancelled: int = 0            # handles cancelled before firing
    calendar_high_water: int = 0  # max heap length (incl. cancelled entries)

    def as_dict(self) -> Dict[str, int]:
        return {
            "scheduled": self.scheduled,
            "fired": self.fired,
            "cancelled": self.cancelled,
            "calendar_high_water": self.calendar_high_water,
        }


@dataclass(order=True)
class _Event:
    time: int
    priority: int
    seq: int
    action: Optional[Action] = field(compare=False)

    @property
    def cancelled(self) -> bool:
        return self.action is None


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`; allows cancel."""

    __slots__ = ("_event", "_stats")

    def __init__(self, event: _Event, stats: Optional[SimStats] = None):
        self._event = event
        self._stats = stats

    @property
    def time(self) -> int:
        """Absolute firing time of the event (ns)."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True until the event fires or is cancelled."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self._event.action is not None:
            self._event.action = None
            if self._stats is not None:
                self._stats.cancelled += 1


class Simulator:
    """The event calendar and virtual clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> (sim.now, fired)
    (100, [100])

    *profiler* (optional) must offer ``clock() -> int`` and
    ``record_action(action, elapsed_ns)`` -- see
    :class:`repro.obs.profiler.WallClockProfiler`.  Left ``None``, the run
    loop takes the unprofiled fast path.
    """

    def __init__(self, profiler: Optional[Any] = None) -> None:
        self._now = 0
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._running = False
        self.stats = SimStats()
        self.profiler = profiler

    # ------------------------------------------------------------ properties

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Count of events fired so far (for progress/benchmark reporting)."""
        return self.stats.fired

    @property
    def pending(self) -> int:
        """Number of scheduled-and-not-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: int, action: Action, priority: int = 0) -> EventHandle:
        """Schedule *action* to fire *delay* ns from now.

        Lower *priority* fires first among same-time events; the default 0
        suits almost everything, gate flips use a negative priority so a gate
        that opens at time T affects a frame arriving exactly at T.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns in the past")
        return self.schedule_at(self._now + delay, action, priority)

    def schedule_at(self, time: int, action: Action, priority: int = 0) -> EventHandle:
        """Schedule *action* at absolute simulation *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}ns, now is {self._now}ns"
            )
        event = _Event(time, priority, next(self._seq), action)
        heapq.heappush(self._heap, event)
        stats = self.stats
        stats.scheduled += 1
        if len(self._heap) > stats.calendar_high_water:
            stats.calendar_high_water = len(self._heap)
        return EventHandle(event, stats)

    # --------------------------------------------------------------- running

    def _execute(self, action: Action) -> None:
        profiler = self.profiler
        if profiler is None:
            action()
            return
        clock = profiler.clock
        started = clock()
        try:
            action()
        finally:
            profiler.record_action(action, clock() - started)

    def run(self, until: Optional[int] = None) -> None:
        """Execute events in order until the calendar drains or *until* (ns).

        With *until* given, the clock is left exactly at *until* even if the
        calendar drained earlier, so repeated ``run(until=...)`` calls form a
        monotonic timeline.  Events scheduled exactly at *until* do fire.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from an event")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}ns, now is {self._now}ns"
            )
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                self.stats.fired += 1
                action, event.action = event.action, None
                assert action is not None
                self._execute(action)
        finally:
            self._running = False
        if until is not None:
            self._now = max(self._now, until)

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the calendar is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.stats.fired += 1
            action, event.action = event.action, None
            assert action is not None
            self._execute(action)
            return True
        return False

    def peek(self) -> Optional[int]:
        """Timestamp of the next live event, or None if the calendar is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
