"""Discrete-event simulation kernel.

A deliberately small, fast core: a binary-heap calendar of plain tuples
``(time, priority, seq, payload)`` whose actions are Python callables.  All
times are integer nanoseconds (see :mod:`repro.core.units`).

Determinism: events at the same timestamp fire in (priority, insertion)
order, so two runs of the same scenario produce identical traces.  The
testbed relies on this to make latency distributions reproducible under a
fixed RNG seed.  Tuple comparison never reaches the payload element because
``seq`` is unique.

Calendar representation (the hot-path design):

* Entries are plain tuples, not objects -- CPython compares tuples of ints
  several times faster than it calls a dataclass ``__lt__``, and a tuple
  costs one allocation versus an object plus its dict/slots.
* The payload of a :meth:`Simulator.post` event is the bare action callable.
  ``post`` is the fire-and-forget fast path: no handle, no cancellation, no
  per-event bookkeeping object.  Dataplane hot paths (frame delivery, gate
  wakeups, periodic sources) use it.
* The payload of a :meth:`Simulator.schedule` event is a one-element list
  ``[action]`` -- a mutable *slot* shared with the returned
  :class:`EventHandle` so the handle can cancel the entry in O(1) by
  nulling the slot (classic lazy deletion).  The handle itself is the only
  per-event object allocated, and only on this path.
* Cancelled entries stay in the heap until they surface (lazy deletion) or
  until a threshold-triggered compaction rebuilds the heap without them, so
  cancellation storms (cut-through retries, gate re-arbitration) cannot
  inflate the calendar indefinitely.
* A live-event counter makes :attr:`Simulator.pending` O(1) instead of an
  O(n) scan.

This style (callbacks, not coroutines) was chosen over a simpy-like process
model because the switch dataplane is naturally event-shaped -- "frame fully
received", "gate state flips", "serialization done" -- and the kernel stays
trivially inspectable.

Observability: every kernel counts scheduling activity in :class:`SimStats`
(events scheduled/fired/cancelled, dead entries reclaimed by compaction,
and the calendar's high-water mark -- plain integer bumps, always on).
Wall-clock attribution of event actions is opt-in: pass a
:class:`repro.obs.profiler.WallClockProfiler` and each action's host-CPU
time is recorded under its qualified name.  With the default
``profiler=None`` the run loop performs **no** clock reads at all.

Two more opt-in hooks serve the campaign observability layer: attaching a
:class:`repro.obs.flight.FlightRecorder` (``sim.flight = recorder``) rings
every fired event for post-mortem dumps, and setting
:attr:`Simulator.event_budget` turns the kernel into its own deterministic
watchdog -- the run raises :class:`EventBudgetExceeded` at exactly the same
simulation point on any host, unlike a wall-clock ``SIGALRM``.  Both
default to off and cost one ``is not None`` test per event.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import SimulationError

__all__ = [
    "Simulator",
    "EventHandle",
    "SimStats",
    "EventBudgetExceeded",
]


class EventBudgetExceeded(SimulationError):
    """The run fired more events than its configured budget allows.

    A *deterministic* timeout: unlike a wall-clock ``SIGALRM``, the budget
    trips at exactly the same simulation point on every host and worker
    count, so campaign rows and flight-recorder dumps produced by budget
    kills are byte-identical wherever they run.
    """

Action = Callable[[], Any]


class _Fired:
    """Sentinel marking a cancellable slot whose action already ran.

    Distinct from ``None`` (= cancelled) so :meth:`EventHandle.cancel` can
    tell "already fired" apart from "already cancelled" and bump
    :attr:`SimStats.cancelled` only for true cancellations.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<fired>"


_FIRED = _Fired()

#: Compaction trigger: rebuild the heap once this many dead entries have
#: accumulated *and* they outnumber the live ones.  The floor keeps tiny
#: calendars from compacting constantly; the ratio bounds wasted memory and
#: pop work at 2x regardless of calendar size.
_COMPACT_MIN_DEAD = 64


@dataclass
class SimStats:
    """Always-on calendar accounting of one kernel."""

    scheduled: int = 0            # schedule()/schedule_at()/post() calls
    fired: int = 0                # actions actually executed
    cancelled: int = 0            # handles cancelled before firing
    compacted: int = 0            # dead heap entries reclaimed by compaction
    calendar_high_water: int = 0  # max heap length (incl. cancelled entries)

    def as_dict(self) -> Dict[str, int]:
        return {
            "scheduled": self.scheduled,
            "fired": self.fired,
            "cancelled": self.cancelled,
            "compacted": self.compacted,
            "calendar_high_water": self.calendar_high_water,
        }


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`; allows cancel."""

    __slots__ = ("_slot", "_time", "_sim")

    def __init__(self, slot: List[Optional[Action]], time: int,
                 sim: "Simulator"):
        self._slot = slot
        self._time = time
        self._sim = sim

    @property
    def time(self) -> int:
        """Absolute firing time of the event (ns)."""
        return self._time

    @property
    def active(self) -> bool:
        """True until the event fires or is cancelled."""
        payload = self._slot[0]
        return payload is not None and payload is not _FIRED

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once,
        and a no-op (not a miscount) if the event already fired."""
        slot = self._slot
        payload = slot[0]
        if payload is None or payload is _FIRED:
            return
        slot[0] = None
        self._sim._note_cancel()


class Simulator:
    """The event calendar and virtual clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> (sim.now, fired)
    (100, [100])

    *profiler* (optional) must offer ``clock() -> int`` and
    ``record_action(action, elapsed_ns)`` -- see
    :class:`repro.obs.profiler.WallClockProfiler`.  Left ``None``, the run
    loop takes the unprofiled fast path.

    *backend* selects the dispatch implementation: ``"py"`` (the pure
    Python reference) or ``"c"`` (the optional compiled inner loop from
    :mod:`repro.sim.fastpath`).  ``None`` consults the ``REPRO_BACKEND``
    environment variable and falls back to ``"py"``.  Requesting ``"c"``
    when the extension cannot be built degrades cleanly to ``"py"``; the
    resolved choice is readable as :attr:`backend`.  Both backends produce
    byte-identical traces, stats and results -- the compiled loop only
    removes interpreter overhead.
    """

    def __init__(
        self,
        profiler: Optional[Any] = None,
        backend: Optional[str] = None,
    ) -> None:
        requested = backend or os.environ.get("REPRO_BACKEND") or "py"
        if requested not in ("py", "c"):
            raise SimulationError(
                f"backend must be 'py' or 'c', got {requested!r}"
            )
        self._ext: Optional[Any] = None
        if requested == "c":
            from . import fastpath

            self._ext = fastpath.load()
        #: The resolved dispatch backend ("c" only when the compiled
        #: extension actually loaded).
        self.backend: str = "c" if self._ext is not None else "py"
        self._now = 0
        # (time, priority, seq, payload); payload is the action itself
        # (post) or a mutable [action] slot (schedule).
        self._heap: List[Tuple[int, int, int, Any]] = []
        self._seq = 0
        self._live = 0
        self._running = False
        self.stats = SimStats()
        self.profiler = profiler
        #: Optional :class:`repro.obs.flight.FlightRecorder`; when attached,
        #: every fired event is noted (time + category) in its ring.
        self.flight: Optional[Any] = None
        #: Optional cap on total events fired; exceeding it raises
        #: :class:`EventBudgetExceeded` (the deterministic per-run timeout
        #: the campaign engine injects).
        self.event_budget: Optional[int] = None

    # ------------------------------------------------------------ properties

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Count of events fired so far (for progress/benchmark reporting)."""
        return self.stats.fired

    @property
    def pending(self) -> int:
        """Number of scheduled-and-not-cancelled events.  O(1)."""
        return self._live

    # ------------------------------------------------------------ scheduling

    def post(self, delay: int, action: Action, priority: int = 0) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, minimal overhead.

        The hot-path primitive: use it whenever the caller never cancels.
        Lower *priority* fires first among same-time events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns in the past")
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        heapq.heappush(heap, (self._now + delay, priority, seq, action))
        stats = self.stats
        stats.scheduled += 1
        self._live += 1
        if len(heap) > stats.calendar_high_water:
            stats.calendar_high_water = len(heap)

    def post_at(self, time: int, action: Action, priority: int = 0) -> None:
        """Fire-and-forget :meth:`schedule_at` (absolute time, no handle)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}ns, now is {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        heapq.heappush(heap, (time, priority, seq, action))
        stats = self.stats
        stats.scheduled += 1
        self._live += 1
        if len(heap) > stats.calendar_high_water:
            stats.calendar_high_water = len(heap)

    def schedule(self, delay: int, action: Action, priority: int = 0) -> EventHandle:
        """Schedule *action* to fire *delay* ns from now.

        Lower *priority* fires first among same-time events; the default 0
        suits almost everything, gate wakeups use a negative priority so a
        gate that opens at time T affects a frame arriving exactly at T.
        Returns a cancellable handle; callers that never cancel should use
        :meth:`post` and skip the handle allocation.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns in the past")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        slot: List[Optional[Action]] = [action]
        heap = self._heap
        heapq.heappush(heap, (time, priority, seq, slot))
        stats = self.stats
        stats.scheduled += 1
        self._live += 1
        if len(heap) > stats.calendar_high_water:
            stats.calendar_high_water = len(heap)
        return EventHandle(slot, time, self)

    def schedule_at(self, time: int, action: Action, priority: int = 0) -> EventHandle:
        """Schedule *action* at absolute simulation *time* (cancellable)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}ns, now is {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        slot: List[Optional[Action]] = [action]
        heap = self._heap
        heapq.heappush(heap, (time, priority, seq, slot))
        stats = self.stats
        stats.scheduled += 1
        self._live += 1
        if len(heap) > stats.calendar_high_water:
            stats.calendar_high_water = len(heap)
        return EventHandle(slot, time, self)

    # ------------------------------------------------------- lazy deletion

    def _note_cancel(self) -> None:
        self.stats.cancelled += 1
        self._live -= 1
        heap = self._heap
        dead = len(heap) - self._live
        if dead >= _COMPACT_MIN_DEAD and dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without dead entries.

        In-place (slice assignment) so bindings held by a running event
        loop stay valid.  ``calendar_high_water`` keeps its monotonic
        maximum: compaction reclaims memory, it does not rewrite history.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [
            entry for entry in heap
            if not (type(entry[3]) is list and entry[3][0] is None)
        ]
        heapq.heapify(heap)
        self.stats.compacted += before - len(heap)

    # --------------------------------------------------------------- running

    def run(self, until: Optional[int] = None) -> None:
        """Execute events in order until the calendar drains or *until* (ns).

        With *until* given, the clock is left exactly at *until* even if the
        calendar drained earlier, so repeated ``run(until=...)`` calls form a
        monotonic timeline.  Events scheduled exactly at *until* do fire.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from an event")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}ns, now is {self._now}ns"
            )
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        stats = self.stats
        profiler = self.profiler
        flight = self.flight
        budget = self.event_budget
        if (
            self._ext is not None
            and profiler is None
            and flight is None
            and budget is None
        ):
            # Compiled inner dispatch.  The observability hooks above need
            # per-event Python work, so any of them being attached falls
            # back to the reference loop below.
            try:
                self._ext.run_loop(heap, until, self, stats, _FIRED)
            finally:
                self._running = False
            if until is not None and until > self._now:
                self._now = until
            return
        try:
            while heap:
                entry = heap[0]
                if until is not None and entry[0] > until:
                    break
                pop(heap)
                payload = entry[3]
                if type(payload) is list:
                    action = payload[0]
                    if action is None:
                        continue  # cancelled: lazy deletion surfaces here
                    payload[0] = _FIRED
                else:
                    action = payload
                self._now = entry[0]
                stats.fired += 1
                self._live -= 1
                if flight is not None:
                    flight.record(entry[0], action)
                if budget is not None and stats.fired > budget:
                    raise EventBudgetExceeded(
                        f"event budget of {budget} events exceeded at "
                        f"{entry[0]}ns"
                    )
                if profiler is None:
                    action()
                else:
                    clock = profiler.clock
                    started = clock()
                    try:
                        action()
                    finally:
                        profiler.record_action(action, clock() - started)
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the calendar is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            payload = entry[3]
            if type(payload) is list:
                action = payload[0]
                if action is None:
                    continue
                payload[0] = _FIRED
            else:
                action = payload
            self._now = entry[0]
            self.stats.fired += 1
            self._live -= 1
            if self.flight is not None:
                self.flight.record(entry[0], action)
            budget = self.event_budget
            if budget is not None and self.stats.fired > budget:
                raise EventBudgetExceeded(
                    f"event budget of {budget} events exceeded at "
                    f"{entry[0]}ns"
                )
            profiler = self.profiler
            if profiler is None:
                action()
            else:
                clock = profiler.clock
                started = clock()
                try:
                    action()
                finally:
                    profiler.record_action(action, clock() - started)
            return True
        return False

    def peek(self) -> Optional[int]:
        """Timestamp of the next live event, or None if the calendar is empty.

        Dead (cancelled) heads are discarded on the way -- part of lazy
        deletion, and invisible to :class:`SimStats`: the high-water mark is
        a monotonic maximum and cancellations were already counted.
        """
        heap = self._heap
        while heap:
            payload = heap[0][3]
            if type(payload) is list and payload[0] is None:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return None
