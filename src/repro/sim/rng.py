"""Seeded random-number substreams.

Every stochastic choice in a scenario (flow deadlines, background packet
arrival phases, clock drift draws, ...) pulls from a named substream derived
from one master seed.  This gives two properties the experiments need:

* **Reproducibility** -- the same seed yields the same packet-level trace.
* **Independence under refactoring** -- adding a new consumer of randomness
  does not perturb existing substreams, because each substream's seed is a
  stable hash of ``(master_seed, name)`` rather than a draw from a shared
  generator.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngFactory"]


class RngFactory:
    """Hands out independent :class:`random.Random` substreams by name."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The substream for *name*, created deterministically on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngFactory":
        """A child factory whose streams are independent of the parent's."""
        digest = hashlib.sha256(f"{self.master_seed}/{salt}".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "big"))
