"""Lightweight event tracing.

A :class:`Tracer` collects ``(time, category, message, fields)`` records from
any component that was handed one.  Tracing is opt-in per category so the
hot dataplane path pays a single dict lookup when a category is disabled.

The analyzer does *not* use the tracer (it records packet receptions
directly); the tracer exists for debugging scenarios and for the examples,
which print annotated timelines of gate flips and enqueue/dequeue decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.units import fmt_time

__all__ = ["Tracer", "TraceRecord", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line."""

    time: int
    category: str
    message: str
    fields: Tuple[Tuple[str, Any], ...] = ()

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields)
        body = f"[{fmt_time(self.time):>10}] {self.category}: {self.message}"
        return f"{body} {extra}".rstrip()


class Tracer:
    """Collects trace records for enabled categories.

    >>> tracer = Tracer(enabled={"gate"})
    >>> tracer.emit(0, "gate", "open", queue=3)
    >>> tracer.emit(0, "queue", "enqueue")  # disabled: dropped
    >>> len(tracer.records)
    1
    """

    #: Cheap hot-path gate: ``False`` only on the do-nothing singleton, so
    #: dataplane call sites can skip building messages/kwargs entirely
    #: (``if tracer.active: tracer.emit(...)``) without a method call.
    active: bool = True

    def __init__(
        self,
        enabled: Optional[Iterable[str]] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
    ) -> None:
        self._enabled = set(enabled) if enabled is not None else None
        self._disabled: set = set()
        self._sink = sink
        self.records: List[TraceRecord] = []

    def enabled_for(self, category: str) -> bool:
        if category in self._disabled:
            return False
        return self._enabled is None or category in self._enabled

    def enable(self, category: str) -> None:
        """Turn *category* on (undoes an earlier :meth:`disable`)."""
        self._disabled.discard(category)
        if self._enabled is not None:
            self._enabled.add(category)

    def disable(self, category: str) -> None:
        """Turn *category* off; it stays off until :meth:`enable`."""
        self._disabled.add(category)

    def emit(self, time: int, category: str, message: str, **fields: Any) -> None:
        """Record one line if *category* is enabled."""
        if not self.enabled_for(category):
            return
        record = TraceRecord(time, category, message, tuple(fields.items()))
        self.records.append(record)
        if self._sink is not None:
            self._sink(record)

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()


class _NullTracer(Tracer):
    """A tracer that drops everything (the dataplane default).

    The shared :data:`NULL_TRACER` singleton must stay inert no matter who
    holds a reference to it, so :meth:`enable` / :meth:`disable` are no-ops
    here -- enabling a category on the singleton would silently turn on
    record collection for *every* component built without a tracer.
    """

    active = False

    def __init__(self) -> None:
        super().__init__(enabled=())

    def enable(self, category: str) -> None:
        return

    def disable(self, category: str) -> None:
        return

    def emit(self, time: int, category: str, message: str, **fields: Any) -> None:
        return


#: Shared do-nothing tracer; components default to this.
NULL_TRACER = _NullTracer()
