"""Sharded single-run simulation with conservative lookahead.

``run_sharded`` splits one scenario's topology across worker processes and
runs them as a conservatively synchronized parallel discrete-event
simulation (null-message / lookahead-window PDES):

* **Partitioning** happens at link boundaries: every switch is assigned to
  exactly one shard (a contiguous BFS block over the trunk graph by
  default, user-overridable through the scenario's ``"shard"`` stanza),
  hosts follow the switch they hang off, and a *cut link* is any link
  whose transmitter and receiver live in different shards.

* **Lookahead** comes from the cut links' propagation delay ``W``: a frame
  leaving its transmitter at time ``s`` cannot arrive before ``s + W``, so
  once the global minimum next-event time is ``T``, every shard can safely
  execute the window ``[T, T + W - 1]`` without ever receiving a frame it
  should already have seen.  Each epoch the coordinator gathers every
  shard's next-event time plus all in-flight cross-shard frames, computes
  the window, distributes pending frame handoffs, and barriers on the
  replies -- the null-message grant of classic conservative PDES, carried
  over one pipe per worker.

* **Determinism** is byte-level: every shard builds the *complete* testbed
  from the scenario document (all build-time RNG draws are name-keyed
  through :class:`~repro.sim.rng.RngFactory`, hence order-independent) but
  only *starts* the components it owns.  Same-instant event ties are
  broken by each link's topology-derived ``arrival_priority`` rather than
  by posting order, so a 1-shard and an N-shard run replay the identical
  event sequence per component.  Traces are merged under a canonical sort
  for every shard count, and the merged :class:`ScenarioResult` reproduces
  the single-process run's observables exactly -- traces, drop reports,
  headroom accounting, sweep rows.

Restrictions (raise :class:`~repro.core.errors.ConfigurationError`): gPTP
(``enable_gptp`` / ``gm_down`` / ``gm_up`` faults) needs a cross-shard sync
domain, SLO verdicts need cross-shard expected counts mid-run, and the
span/metrics/profiler/recorder observers assume one kernel; none of these
are supported in shard mode.  Zero propagation delay would collapse the
lookahead window and is rejected whenever a cut link exists.
"""

from __future__ import annotations

import math
import multiprocessing
import time
import traceback
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.errors import ConfigurationError, SimulationError

__all__ = ["plan_partition", "run_sharded", "shard_stanza"]

#: Sentinel for "calendar empty" in coordinator arithmetic.
_INF = math.inf

#: Counter fields of :class:`~repro.switch.counters.SwitchCounters` shipped
#: in a shard's state blob (``per_queue_enqueued`` travels separately).
_COUNTER_FIELDS = (
    "received", "forwarded", "transmitted", "dropped_unknown_dst",
    "dropped_policer", "dropped_gate", "dropped_tail",
    "dropped_no_buffer", "dropped_corrupt",
)

_QUEUE_STAT_FIELDS = (
    "enqueued", "enqueued_bytes", "dequeued", "tail_drops", "gate_drops",
    "high_water",
)

_POOL_STAT_FIELDS = (
    "allocations", "allocated_bytes", "releases", "exhaustion_drops",
    "high_water",
)

_METER_STAT_FIELDS = (
    "conformed_frames", "conformed_bytes", "violated_frames",
    "violated_bytes",
)

_LINK_COUNTER_FIELDS = (
    "frames_carried", "frames_corrupted", "frames_blackholed",
    "frames_fault_lost", "frames_fault_corrupted", "down_count",
)


# --------------------------------------------------------------- partitioning


def shard_stanza(scenario: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """The scenario's ``"shard"`` stanza, or ``None`` when absent/empty."""
    stanza = scenario.get("shard")
    if stanza is None:
        return None
    if not isinstance(stanza, Mapping):
        raise ConfigurationError(
            f"shard: expected an object, got {type(stanza).__name__}"
        )
    return dict(stanza)


def plan_partition(
    topology,
    count: int,
    assign: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Assign every switch to a shard index in ``[0, count)``.

    With *assign* given it must cover every switch (a partial map would
    make the partition depend on heuristic details the user cannot see).
    Otherwise switches are ordered by BFS over the (undirected) trunk
    graph -- started from the first switch in spec order, neighbors
    visited in spec order -- and split into ``count`` contiguous
    near-equal blocks.  For chains and rings this is the min-cut split;
    for stars it isolates branch groups.  The result is a pure function
    of the topology spec.
    """
    switches = list(topology.switch_ports)
    if count < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {count}")
    if count > len(switches):
        raise ConfigurationError(
            f"shard count {count} exceeds switch count {len(switches)}"
        )
    if assign is not None:
        missing = [s for s in switches if s not in assign]
        if missing:
            raise ConfigurationError(
                f"shard.assign must cover every switch; missing {missing}"
            )
        unknown = sorted(set(assign) - set(switches))
        if unknown:
            raise ConfigurationError(
                f"shard.assign names unknown switches {unknown}"
            )
        out: Dict[str, int] = {}
        for switch in switches:
            index = assign[switch]
            if not isinstance(index, int) or isinstance(index, bool) \
                    or not 0 <= index < count:
                raise ConfigurationError(
                    f"shard.assign.{switch}: expected an integer in "
                    f"[0, {count}), got {index!r}"
                )
            out[switch] = index
        used = set(out.values())
        empty = sorted(set(range(count)) - used)
        if empty:
            raise ConfigurationError(
                f"shard.assign leaves shards {empty} without any switch"
            )
        return out

    adjacency: Dict[str, List[str]] = {s: [] for s in switches}
    for trunk in topology.trunks:
        if trunk.dst not in adjacency[trunk.src]:
            adjacency[trunk.src].append(trunk.dst)
        if trunk.src not in adjacency[trunk.dst]:
            adjacency[trunk.dst].append(trunk.src)
    order: List[str] = []
    seen = set()
    for root in switches:  # spec order; later roots pick up disconnected bits
        if root in seen:
            continue
        frontier = [root]
        seen.add(root)
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
    base, extra = divmod(len(order), count)
    assignment: Dict[str, int] = {}
    cursor = 0
    for shard in range(count):
        size = base + (1 if shard < extra else 0)
        for switch in order[cursor:cursor + size]:
            assignment[switch] = shard
        cursor += size
    return assignment


def _host_shards(topology, assignment: Mapping[str, int]) -> Dict[str, int]:
    """Each host's shard: talkers follow their uplink switch, listeners
    their *first* attachment's switch (FRER listeners have two)."""
    shards: Dict[str, int] = {}
    for uplink in topology.uplinks:
        shards.setdefault(uplink.host, assignment[uplink.dst])
    for attachment in topology.attachments:
        shards.setdefault(attachment.host, assignment[attachment.switch])
    return shards


def _link_plan(
    topology, assignment: Mapping[str, int]
) -> List[Tuple[int, int]]:
    """Per link -- in :meth:`Testbed._wire_links` wiring order -- the
    ``(transmitting shard, receiving shard)`` pair."""
    host_shards = _host_shards(topology, assignment)
    plan: List[Tuple[int, int]] = []
    for trunk in topology.trunks:
        plan.append((assignment[trunk.src], assignment[trunk.dst]))
    for uplink in topology.uplinks:
        # The host NIC transmits; the host and its switch share a shard.
        plan.append((host_shards[uplink.host], assignment[uplink.dst]))
    for attachment in topology.attachments:
        plan.append(
            (assignment[attachment.switch], host_shards[attachment.host])
        )
    return plan


# ---------------------------------------------------------------- validation


def _validate_scenario(spec, shards: int) -> None:
    if spec.slo is not None:
        raise ConfigurationError(
            "shard mode does not support the 'slo' stanza: loss verdicts "
            "need cross-shard expected counts mid-run"
        )
    if spec.extras.get("enable_gptp"):
        raise ConfigurationError(
            "shard mode does not support enable_gptp: the sync domain "
            "spans shards"
        )
    if spec.faults is not None:
        for event in spec.faults.get("events", []):
            kind = event.get("kind") if isinstance(event, Mapping) else None
            if kind in ("gm_down", "gm_up"):
                raise ConfigurationError(
                    f"shard mode does not support {kind!r} fault events "
                    f"(no cross-shard gPTP domain)"
                )


# ------------------------------------------------------------- state capture


def _counters_blob(counters) -> Dict[str, Any]:
    blob = {name: getattr(counters, name) for name in _COUNTER_FIELDS}
    blob["per_queue"] = dict(counters.per_queue_enqueued)
    return blob


def _overlay_counters(counters, blob: Mapping[str, Any]) -> None:
    for name in _COUNTER_FIELDS:
        setattr(counters, name, blob[name])
    counters.per_queue_enqueued.clear()
    counters.per_queue_enqueued.update(blob["per_queue"])


def _switch_blob(switch) -> Dict[str, Any]:
    ports = []
    for port in switch.ports:
        ports.append({
            "queues": [
                {f: getattr(q.stats, f) for f in _QUEUE_STAT_FIELDS}
                for q in port.queues
            ],
            "pool": {
                f: getattr(port.pool.stats, f) for f in _POOL_STAT_FIELDS
            },
            "preemptions": port.preemptions,
        })
    meters = [
        (key, tuple(getattr(meter.stats, f) for f in _METER_STAT_FIELDS))
        for key, meter in switch.pipeline.meters
    ]
    return {
        "counters": _counters_blob(switch.counters),
        "ports": ports,
        "meters": meters,
    }


def _overlay_switch(switch, blob: Mapping[str, Any]) -> None:
    _overlay_counters(switch.counters, blob["counters"])
    for port, port_blob in zip(switch.ports, blob["ports"]):
        for queue, q_blob in zip(port.queues, port_blob["queues"]):
            for name in _QUEUE_STAT_FIELDS:
                setattr(queue.stats, name, q_blob[name])
        for name in _POOL_STAT_FIELDS:
            setattr(port.pool.stats, name, port_blob["pool"][name])
        port.preemptions = port_blob["preemptions"]
    meters = dict(blob["meters"])
    for key, meter in switch.pipeline.meters:
        stats = meters.get(key)
        if stats is not None:
            for name, value in zip(_METER_STAT_FIELDS, stats):
                setattr(meter.stats, name, value)


def _shard_state(testbed, owned, trace: bool) -> Dict[str, Any]:
    """Everything a shard measured about the components it owns."""
    state: Dict[str, Any] = {
        "switches": {
            name: _switch_blob(testbed.switches[name])
            for name in owned["switches"]
        },
        "hosts": {
            name: {
                "counters": _counters_blob(testbed.hosts[name].counters),
                "received": testbed.hosts[name].received,
            }
            for name in owned["hosts"]
        },
        "links": {
            testbed.links[i].name: {
                f: getattr(testbed.links[i], f)
                for f in _LINK_COUNTER_FIELDS
            }
            for i in owned["links"]
        },
    }
    analyzer = testbed.analyzer
    records = {}
    for flow in testbed.flows:
        if flow.dst in owned["hosts"]:
            record = analyzer.records[flow.flow_id]
            records[flow.flow_id] = {
                "latencies_ns": list(record.latencies_ns),
                "deadline_misses": record.deadline_misses,
                "duplicates": record.duplicates,
                "reorders": record.reorders,
                "last_seq": record._last_seq,
            }
    state["records"] = records
    state["unknown_frames"] = analyzer.unknown_frames
    state["expected"] = {
        source.flow_id: source.emitted
        for source in testbed._sources
        if source._inject.__self__.name in owned["hosts"]
    }
    state["frer"] = {
        listener: {
            flow_id: (ctx.accepted, ctx.discarded, ctx.rogue)
            for flow_id, ctx in eliminator._contexts.items()
        }
        for listener, eliminator in testbed.frer_eliminators.items()
        if listener in owned["hosts"]
    }
    injector = getattr(testbed, "fault_injector", None)
    if injector is not None:
        state["fault_timeline"] = list(injector.executed)
        state["fault_touched"] = sorted(injector._touched_links)
    state["trace"] = list(testbed.tracer.records) if trace else []
    state["sim_stats"] = testbed.sim.stats.as_dict()
    return state


# ------------------------------------------------------------- child process


def _owned_sets(
    topology, assignment: Mapping[str, int], shard_index: int
) -> Dict[str, Any]:
    host_shards = _host_shards(topology, assignment)
    link_plan = _link_plan(topology, assignment)
    return {
        "switches": {
            s for s, shard in assignment.items() if shard == shard_index
        },
        "hosts": {
            h for h, shard in host_shards.items() if shard == shard_index
        },
        # A link belongs to its transmitting side: carry-time accounting
        # (loss draws, fault counters) happens there.
        "links": [
            i for i, (src, _dst) in enumerate(link_plan)
            if src == shard_index
        ],
        "cut_out": [
            i for i, (src, dst) in enumerate(link_plan)
            if src == shard_index and dst != shard_index
        ],
        "cut_in": [
            i for i, (src, dst) in enumerate(link_plan)
            if dst == shard_index and src != shard_index
        ],
    }


def _export_frame(link, frame) -> Tuple:
    if type(frame) is int:
        frame = link._batch.materialize(frame)
    return (
        frame.src_mac, frame.dst_mac, frame.vlan_id, frame.pcp,
        frame.size_bytes, frame.flow_id, frame.seq, frame.created_ns,
        frame.fcs_ok,
    )


def _import_frame(batch, payload: Tuple):
    (src_mac, dst_mac, vlan_id, pcp, size_bytes, flow_id, seq,
     created_ns, fcs_ok) = payload
    if batch is not None and fcs_ok:
        return batch.alloc(
            src_mac, dst_mac, vlan_id, pcp, size_bytes, flow_id, seq,
            created_ns,
        )
    from repro.switch.packet import EthernetFrame

    return EthernetFrame(
        src_mac=src_mac, dst_mac=dst_mac, vlan_id=vlan_id, pcp=pcp,
        size_bytes=size_bytes, flow_id=flow_id, seq=seq,
        created_ns=created_ns, fcs_ok=fcs_ok,
    )


def _build_replica(scenario: Mapping[str, Any], trace: bool):
    """Build the full testbed the way every shard (and the coordinator)
    must: reset the process-global counters the build consumes, so MACs
    and frame ids agree across processes regardless of fork timing."""
    from repro.network.host import Host
    from repro.network.scenario import ScenarioSpec
    from repro.sim.trace import NULL_TRACER, Tracer
    from repro.switch.packet import reset_frame_ids

    Host._next_index = 0
    reset_frame_ids()
    payload = {k: v for k, v in scenario.items() if k != "shard"}
    spec = ScenarioSpec.from_dict(payload, strict=False)
    tracer = Tracer() if trace else NULL_TRACER
    testbed = spec.build_testbed(tracer=tracer)
    testbed.build()
    return spec, testbed


def _start_owned(testbed, owned, duration_ns: int) -> None:
    """Replicate ``Testbed.run``'s start sequence for owned components."""
    from repro.faults.injector import FaultInjector
    from repro.traffic.generator import PeriodicSource

    if testbed.fault_plan is not None:
        testbed.fault_injector = FaultInjector(
            testbed.fault_plan,
            sim=testbed.sim,
            links=testbed.links,
            switches=testbed.switches,
            rng=testbed.rng,
            sync_domain=None,
            metrics=None,
        )
        testbed.fault_injector.arm(testbed.sim.now)
    for name in owned["switches"]:
        testbed.switches[name].start()
    for name in owned["hosts"]:
        testbed.hosts[name].start()
    for source in testbed._sources:
        if source._inject.__self__.name not in owned["hosts"]:
            continue
        if isinstance(source, PeriodicSource):
            remaining = duration_ns - source.offset_ns
            source.limit = max(0, -(-remaining // source.period_ns))
        else:
            source.until_ns = testbed.sim.now + duration_ns
        source.start()


def _shard_worker(
    conn,
    scenario: Dict[str, Any],
    shard_index: int,
    assignment: Dict[str, int],
    duration_ns: int,
    trace: bool,
) -> None:
    """One shard's process: build everything, run only what it owns."""
    try:
        _spec, testbed = _build_replica(scenario, trace)
        owned = _owned_sets(testbed.topology, assignment, shard_index)
        outbox: List[Tuple[int, int, Tuple]] = []

        def _diverter(index: int):
            link = testbed.links[index]

            def handoff(arrival_ns: int, frame) -> None:
                outbox.append((index, arrival_ns, _export_frame(link, frame)))

            return handoff

        for index in owned["cut_out"]:
            testbed.links[index].divert(_diverter(index))
        _start_owned(testbed, owned, duration_ns)
        sim = testbed.sim
        busy_s = 0.0
        conn.send(("ready", sim.peek()))
        while True:
            message = conn.recv()
            command = message[0]
            if command == "window":
                _cmd, until, injections = message
                for index, arrival_ns, payload in injections:
                    link = testbed.links[index]
                    frame = _import_frame(testbed.batch, payload)
                    sim.post_at(
                        arrival_ns,
                        (lambda l, f: lambda: l.deliver(f))(link, frame),
                        link.arrival_priority,
                    )
                started = time.perf_counter()
                sim.run(until=until)
                busy_s += time.perf_counter() - started
                conn.send(("done", list(outbox), sim.peek()))
                outbox.clear()
            elif command == "finish":
                _cmd, until = message
                if until > sim.now:
                    started = time.perf_counter()
                    sim.run(until=until)
                    busy_s += time.perf_counter() - started
                state = _shard_state(testbed, owned, trace)
                state["busy_s"] = busy_s
                conn.send(("state", state))
                break
            else:  # pragma: no cover - protocol misuse
                raise SimulationError(f"unknown shard command {command!r}")
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


# -------------------------------------------------------------- coordinator


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _trace_sort_key(record) -> Tuple:
    return (record.time, record.category, record.message, repr(record.fields))


def _merge_sim_stats(per_shard: List[Dict[str, int]]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for stats in per_shard:
        for key, value in stats.items():
            if key == "calendar_high_water":
                merged[key] = max(merged.get(key, 0), value)
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


def run_sharded(
    scenario: Union[Mapping[str, Any], Any],
    shards: Optional[int] = None,
    trace: bool = False,
    drain_slots: int = 8,
):
    """Run one scenario partitioned over *shards* worker processes.

    *scenario* is a scenario document (or a :class:`ScenarioSpec`, taken
    via ``to_dict``).  *shards* overrides the document's
    ``shard.count``; with neither, 1.  Returns a
    :class:`~repro.network.testbed.ScenarioResult` whose observables --
    traces (canonically sorted), drop/headroom reports, counters,
    latency records, fault digests -- are byte-identical for every shard
    count.  Wall-clock shard telemetry rides on the result's
    ``shard_timing`` attribute.
    """
    from repro.faults.injector import FaultReport
    from repro.network.testbed import ScenarioResult

    if hasattr(scenario, "to_dict"):
        scenario = scenario.to_dict()
    scenario = dict(scenario)
    stanza = shard_stanza(scenario) or {}
    count = shards if shards is not None else stanza.get("count", 1)
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise ConfigurationError(
            f"shard count must be an integer >= 1, got {count!r}"
        )

    wall_started = time.perf_counter()
    # The coordinator's replica never runs, but it must carry a real
    # Tracer when tracing so the merged records have somewhere to live
    # (NULL_TRACER is a shared singleton).
    spec, testbed = _build_replica(scenario, trace=trace)
    _validate_scenario(spec, count)
    assignment = plan_partition(
        testbed.topology, count, stanza.get("assign")
    )
    link_plan = _link_plan(testbed.topology, assignment)
    cut_exists = any(src != dst for src, dst in link_plan)
    if cut_exists and testbed.propagation_ns <= 0:
        raise ConfigurationError(
            "shard mode needs propagation_ns > 0: the cut links' "
            "propagation delay is the conservative lookahead window"
        )
    lookahead = testbed.propagation_ns if cut_exists else _INF
    duration_ns = spec.duration_ns
    drain_slot_ns = (
        testbed.sched.slot2_ns(testbed.slot_ns)
        if testbed.shaper == "multi_cqf"
        else testbed.slot_ns
    )
    t_end = duration_ns + drain_slots * drain_slot_ns

    receiver_of = {
        index: dst for index, (src, dst) in enumerate(link_plan)
        if src != dst
    }
    context = _mp_context()
    children = []
    try:
        for shard in range(count):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker,
                args=(
                    child_conn, scenario, shard, assignment, duration_ns,
                    trace,
                ),
                name=f"repro-shard-{shard}",
            )
            process.start()
            child_conn.close()
            children.append((process, parent_conn))

        def _recv(conn):
            try:
                message = conn.recv()
            except EOFError:
                raise SimulationError(
                    "a shard worker died without reporting an error"
                )
            if message[0] == "error":
                raise SimulationError(
                    f"shard worker failed:\n{message[1]}"
                )
            return message

        peeks: List[float] = []
        for _process, conn in children:
            _tag, peek = _recv(conn)
            peeks.append(_INF if peek is None else peek)
        pending: List[List[Tuple[int, int, Tuple]]] = [
            [] for _ in range(count)
        ]
        epochs = 0
        while True:
            t_min = min(
                min(peeks),
                min(
                    (
                        arrival
                        for inbox in pending
                        for (_i, arrival, _f) in inbox
                    ),
                    default=_INF,
                ),
            )
            if t_min > t_end:
                break
            window_end = (
                t_end if lookahead is _INF
                else min(int(t_min) + int(lookahead) - 1, t_end)
            )
            for shard, (_process, conn) in enumerate(children):
                conn.send(("window", window_end, pending[shard]))
                pending[shard] = []
            epochs += 1
            for shard, (_process, conn) in enumerate(children):
                _tag, outbox, peek = _recv(conn)
                peeks[shard] = _INF if peek is None else peek
                for index, arrival_ns, payload in outbox:
                    pending[receiver_of[index]].append(
                        (index, arrival_ns, payload)
                    )
        states: List[Dict[str, Any]] = []
        for _process, conn in children:
            conn.send(("finish", t_end))
        for _process, conn in children:
            _tag, state = _recv(conn)
            states.append(state)
    finally:
        for process, conn in children:
            conn.close()
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join()
    wall_s = time.perf_counter() - wall_started

    # ---- overlay every shard's owned state onto the coordinator replica
    expected: Dict[int, int] = {}
    for shard, state in enumerate(states):
        for name, blob in state["switches"].items():
            _overlay_switch(testbed.switches[name], blob)
        for name, blob in state["hosts"].items():
            host = testbed.hosts[name]
            _overlay_counters(host.counters, blob["counters"])
            host.received = blob["received"]
        links_by_name = {link.name: link for link in testbed.links}
        for name, counters in state["links"].items():
            link = links_by_name[name]
            for field_name, value in counters.items():
                setattr(link, field_name, value)
        for flow_id, blob in state["records"].items():
            record = testbed.analyzer.records[flow_id]
            record.latencies_ns = list(blob["latencies_ns"])
            record.deadline_misses = blob["deadline_misses"]
            record.duplicates = blob["duplicates"]
            record.reorders = blob["reorders"]
            record._last_seq = blob["last_seq"]
        for listener, contexts in state["frer"].items():
            eliminator = testbed.frer_eliminators[listener]
            for flow_id, (accepted, discarded, rogue) in contexts.items():
                recovery = eliminator._contexts.get(flow_id)
                if recovery is None:
                    from repro.frer.elimination import SequenceRecovery

                    recovery = SequenceRecovery(
                        eliminator._history_length
                    )
                    eliminator._contexts[flow_id] = recovery
                recovery.accepted = accepted
                recovery.discarded = discarded
                recovery.rogue = rogue
        expected.update(state["expected"])
    testbed.analyzer.unknown_frames = sum(
        state["unknown_frames"] for state in states
    )
    expected = {
        flow.flow_id: expected[flow.flow_id]
        for flow in testbed.flows
        if flow.flow_id in expected
    }

    fault_report = None
    if testbed.fault_plan is not None:
        # Every shard armed the identical plan, so shard 0's timeline is
        # *the* timeline; link counters come from the overlaid (owning)
        # replicas so a fault on a cut link is counted exactly once.
        fault_report = FaultReport(timeline=list(states[0]["fault_timeline"]))
        links_by_name = {link.name: link for link in testbed.links}
        touched = sorted(
            set().union(*(state["fault_touched"] for state in states))
        )
        for name in touched:
            fault_report.links[name] = links_by_name[name].fault_counters()
        for listener, eliminator in sorted(testbed.frer_eliminators.items()):
            fault_report.frer[listener] = {
                "eliminated": eliminator.duplicates_eliminated,
                "rogue": eliminator.rogue_frames,
            }

    if trace:
        merged = [
            record for state in states for record in state["trace"]
        ]
        merged.sort(key=_trace_sort_key)
        testbed.tracer.records = merged

    busy = [state["busy_s"] for state in states]
    result = ScenarioResult(
        duration_ns=duration_ns,
        slot_ns=testbed.slot_ns,
        expected_by_flow=expected,
        analyzer=testbed.analyzer,
        flows=testbed.flows,
        switches=testbed.switches,
        itp_plan=testbed.itp_plan,
        sched_plan=testbed.sched_plan,
        metrics=None,
        tracer=testbed.tracer,
        sim_stats=_merge_sim_stats([s["sim_stats"] for s in states]),
        spans=None,
        slo=None,
        links=testbed.links,
        frer_eliminators=testbed.frer_eliminators,
        faults=fault_report,
        headroom=None,
    )
    # Wall-clock telemetry (nondeterministic by nature) rides outside the
    # deterministic result fields.  ``critical_path_s`` projects the
    # barrier-synchronized runtime onto unlimited cores: the slowest
    # shard's busy time plus everything that was not shard work.
    coordination_s = max(0.0, wall_s - sum(busy))
    result.base_config = testbed.base_config
    result.shard_timing = {
        "shards": count,
        "epochs": epochs,
        "wall_s": wall_s,
        "busy_s": busy,
        "critical_path_s": (max(busy) if busy else 0.0) + coordination_s,
    }
    return result
