"""Loader/builder for the optional compiled kernel backend.

The C extension in ``_fastpath.c`` implements the event-loop inner
dispatch and the gate-window lookups.  It is strictly optional: this
module compiles it on demand with whatever C compiler the host offers
(``cc``, via :mod:`sysconfig` include paths -- no setuptools, no network)
and silently reports "unavailable" when there is no toolchain, so the
pure-Python kernel remains the reference implementation everywhere.

``load()`` is idempotent and caches its result; the compiled object goes
next to the source when the package directory is writable, else into a
per-user temp directory keyed by Python ABI tag.

Selection is explicit -- ``Simulator(backend="c")`` or ``REPRO_BACKEND=c``
-- never automatic: a benchmark must know (and record) which backend it
measured (see ``repro bench check``).
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["load", "available", "build", "extension_path", "reset"]

_SOURCE = Path(__file__).with_name("_fastpath.c")

_cached = False
_module: Optional[object] = None


def _suffix() -> str:
    return sysconfig.get_config_var("EXT_SUFFIX") or ".so"


def _candidate_dirs() -> list:
    tag = f"py{sys.version_info.major}{sys.version_info.minor}"
    return [
        _SOURCE.parent,
        Path(tempfile.gettempdir()) / f"repro-fastpath-{tag}-{os.getuid()}",
    ]


def extension_path() -> Optional[Path]:
    """Where a compiled extension lives (or would live), if any exists."""
    name = "_fastpath" + _suffix()
    for directory in _candidate_dirs():
        path = directory / name
        if path.exists():
            return path
    return None


def build(verbose: bool = False) -> Optional[Path]:
    """Compile the extension; None when no toolchain (or compile fails).

    Stdlib-only: invokes ``cc`` directly with the interpreter's include
    directory.  Linking is ``-shared`` without ``-lpython``; the symbols
    resolve against the running interpreter at import time, the same
    arrangement setuptools uses on ELF platforms.
    """
    if not _SOURCE.exists():
        return None
    cc = os.environ.get("CC", "cc")
    include = sysconfig.get_paths()["include"]
    name = "_fastpath" + _suffix()
    for directory in _candidate_dirs():
        try:
            directory.mkdir(parents=True, exist_ok=True)
            target = directory / name
            if (
                target.exists()
                and target.stat().st_mtime >= _SOURCE.stat().st_mtime
            ):
                return target
            # Compile to a per-process temp name, then publish with an
            # atomic rename: concurrent builders (pool workers, sharded
            # runs) each produce a complete .so and the loser's rename
            # simply overwrites the winner's identical artifact -- no
            # reader can ever dlopen a half-written file.
            scratch = directory / f".{name}.{os.getpid()}.tmp"
            cmd = [
                cc, "-O2", "-shared", "-fPIC",
                f"-I{include}", str(_SOURCE), "-o", str(scratch),
            ]
            try:
                result = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
                if result.returncode == 0 and scratch.exists():
                    os.replace(scratch, target)
                    return target
                if verbose:
                    sys.stderr.write(result.stderr)
            finally:
                if scratch.exists():
                    scratch.unlink()
        except (OSError, subprocess.SubprocessError):
            continue
    return None


def load() -> Optional[object]:
    """The compiled module, building it if needed; None when unavailable."""
    global _cached, _module
    if _cached:
        return _module
    _cached = True
    path = extension_path()
    if path is None:
        path = build()
    if path is None:
        return None
    try:
        spec = importlib.util.spec_from_file_location(
            "repro.sim._fastpath", path
        )
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    except Exception:
        return None
    _module = module
    return _module


def reset() -> None:
    """Drop the cached load result so the next ``load()`` re-resolves.

    Forked worker processes call this (via the campaign pool initializer)
    so a child never trusts backend state resolved in the parent: the
    parent may have loaded -- or failed to load -- the extension under
    different environment or filesystem conditions than the child sees.
    """
    global _cached, _module
    _cached = False
    _module = None


def available() -> bool:
    return load() is not None
