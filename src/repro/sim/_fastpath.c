/* Compiled fast path for the simulation kernel and gate-window queries.
 *
 * One small C extension, two hot loops:
 *
 *   run_loop(heap, until, sim, stats, fired_sentinel)
 *       The Simulator.run() inner dispatch: pop the binary-heap calendar
 *       (plain tuples, compared via the same tuple ordering heapq uses),
 *       honor lazy deletion of cancelled [action] slots, advance sim._now,
 *       bump stats.fired / sim._live, and call the action.  State is
 *       written back *before* every action so Python code running inside
 *       an event (EventHandle.cancel -> _note_cancel -> compaction
 *       threshold, sim.pending, sim.now) observes exactly what the pure
 *       Python loop would show it -- byte-identical SimStats and traces.
 *
 *   mask_at(offsets, masks, anchor_ns, cycle_ns, pre_mask, now)
 *   open_run_remaining(offsets, masks, anchor_ns, cycle_ns, pre_mask,
 *                      queue_id, now)
 *       The _WindowTable queries of repro.switch.gates lowered to C:
 *       bisect over the cumulative boundary offsets plus the open-run
 *       walk.  Exact integer arithmetic mirrors the Python reference
 *       line for line.
 *
 * The build is optional (see repro/sim/fastpath.py): no toolchain, no
 * extension, and the pure-Python reference runs instead.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ------------------------------------------------------------------ heap */

/* heapq-compatible siftup after replacing heap[0]; tuple comparisons via
 * PyObject_RichCompareBool(Py_LT), matching heapq's ordering exactly. */
static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    Py_ssize_t limit = n >> 1; /* nodes beyond this are leaves */
    PyObject *item = PyList_GET_ITEM(heap, pos);
    Py_INCREF(item);
    while (pos < limit) {
        Py_ssize_t child = 2 * pos + 1;
        if (child + 1 < n) {
            PyObject *a = PyList_GET_ITEM(heap, child);
            PyObject *b = PyList_GET_ITEM(heap, child + 1);
            int lt = PyObject_RichCompareBool(b, a, Py_LT);
            if (lt < 0) {
                Py_DECREF(item);
                return -1;
            }
            if (lt)
                child += 1;
        }
        PyObject *smallest = PyList_GET_ITEM(heap, child);
        int lt = PyObject_RichCompareBool(smallest, item, Py_LT);
        if (lt < 0) {
            Py_DECREF(item);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(smallest);
        PyList_SetItem(heap, pos, smallest);
        pos = child;
    }
    PyList_SetItem(heap, pos, item);
    return 0;
}

/* heapq.heappop: returns a new reference, NULL on error/empty. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 1)
        return last;
    PyObject *head = PyList_GET_ITEM(heap, 0);
    Py_INCREF(head);
    PyList_SetItem(heap, 0, last); /* steals last */
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(head);
        return NULL;
    }
    return head;
}

/* ------------------------------------------------------------- run_loop */

static PyObject *str_now;     /* "_now"  */
static PyObject *str_live;    /* "_live" */
static PyObject *str_fired;   /* "fired" */
static PyObject *long_one;    /* int(1)  */

static PyObject *
fastpath_run_loop(PyObject *self, PyObject *args)
{
    PyObject *heap, *until, *sim, *stats, *fired_sentinel;
    if (!PyArg_ParseTuple(args, "O!OOOO", &PyList_Type, &heap, &until,
                          &sim, &stats, &fired_sentinel))
        return NULL;

    int has_until = until != Py_None;
    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *entry = PyList_GET_ITEM(heap, 0); /* borrowed */
        if (!PyTuple_CheckExact(entry) || PyTuple_GET_SIZE(entry) != 4) {
            PyErr_SetString(PyExc_TypeError,
                            "calendar entries must be 4-tuples");
            return NULL;
        }
        PyObject *time = PyTuple_GET_ITEM(entry, 0);
        if (has_until) {
            int gt = PyObject_RichCompareBool(time, until, Py_GT);
            if (gt < 0)
                return NULL;
            if (gt)
                break;
        }
        entry = heap_pop(heap); /* new reference */
        if (entry == NULL)
            return NULL;
        PyObject *payload = PyTuple_GET_ITEM(entry, 3);
        PyObject *action;
        if (PyList_CheckExact(payload)) {
            action = PyList_GET_ITEM(payload, 0);
            if (action == Py_None) { /* cancelled: lazy deletion */
                Py_DECREF(entry);
                continue;
            }
            Py_INCREF(action);
            Py_INCREF(fired_sentinel);
            PyList_SetItem(payload, 0, fired_sentinel);
        }
        else {
            action = payload;
            Py_INCREF(action);
        }
        /* Write state back before the action runs: event code may read
         * sim.now / sim.pending or cancel handles (compaction math). */
        time = PyTuple_GET_ITEM(entry, 0);
        if (PyObject_SetAttr(sim, str_now, time) < 0)
            goto fail;
        {
            PyObject *live = PyObject_GetAttr(sim, str_live);
            if (live == NULL)
                goto fail;
            PyObject *dec = PyNumber_Subtract(live, long_one);
            Py_DECREF(live);
            if (dec == NULL)
                goto fail;
            int rc = PyObject_SetAttr(sim, str_live, dec);
            Py_DECREF(dec);
            if (rc < 0)
                goto fail;
        }
        {
            PyObject *fired = PyObject_GetAttr(stats, str_fired);
            if (fired == NULL)
                goto fail;
            PyObject *inc = PyNumber_Add(fired, long_one);
            Py_DECREF(fired);
            if (inc == NULL)
                goto fail;
            int rc = PyObject_SetAttr(stats, str_fired, inc);
            Py_DECREF(inc);
            if (rc < 0)
                goto fail;
        }
        {
            PyObject *result = PyObject_CallNoArgs(action);
            if (result == NULL)
                goto fail;
            Py_DECREF(result);
        }
        Py_DECREF(action);
        Py_DECREF(entry);
        continue;
    fail:
        Py_DECREF(action);
        Py_DECREF(entry);
        return NULL;
    }
    Py_RETURN_NONE;
}

/* -------------------------------------------------------- gate queries */

static int
as_int64(PyObject *obj, long long *out)
{
    long long value = PyLong_AsLongLong(obj);
    if (value == -1 && PyErr_Occurred())
        return -1;
    *out = value;
    return 0;
}

/* bisect_right over a list of int offsets. */
static Py_ssize_t
bisect_right_ll(PyObject *offsets, long long pos, Py_ssize_t n)
{
    Py_ssize_t lo = 0, hi = n;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        long long value = PyLong_AsLongLong(PyList_GET_ITEM(offsets, mid));
        if (value == -1 && PyErr_Occurred())
            return -1;
        if (pos < value)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

/* mask_at(offsets, masks, anchor_ns, cycle_ns, pre_mask, now) -> int
 * pre_mask < 0 encodes the Python side's None. */
static PyObject *
fastpath_mask_at(PyObject *self, PyObject *args)
{
    PyObject *offsets, *masks;
    long long anchor, cycle, pre_mask, now;
    if (!PyArg_ParseTuple(args, "O!O!LLLL", &PyList_Type, &offsets,
                          &PyList_Type, &masks, &anchor, &cycle,
                          &pre_mask, &now))
        return NULL;
    Py_ssize_t n = PyList_GET_SIZE(offsets);
    if (now < anchor) {
        if (pre_mask >= 0)
            return PyLong_FromLongLong(pre_mask);
        PyObject *last = PyList_GET_ITEM(masks, n - 1);
        Py_INCREF(last);
        return last;
    }
    long long pos = (now - anchor) % cycle;
    Py_ssize_t j = bisect_right_ll(offsets, pos, n);
    if (j < 0)
        return NULL;
    PyObject *mask = PyList_GET_ITEM(masks, j - 1);
    Py_INCREF(mask);
    return mask;
}

/* open_run_remaining(offsets, masks, anchor_ns, cycle_ns, pre_mask,
 *                    queue_id, now) -> int ns, or None (open forever).
 * Mirrors _WindowTable.locate + open_run_remaining exactly. */
static PyObject *
fastpath_open_run_remaining(PyObject *self, PyObject *args)
{
    PyObject *offsets, *masks;
    long long anchor, cycle, pre_mask, now;
    int queue_id;
    if (!PyArg_ParseTuple(args, "O!O!LLLiL", &PyList_Type, &offsets,
                          &PyList_Type, &masks, &anchor, &cycle,
                          &pre_mask, &queue_id, &now))
        return NULL;
    Py_ssize_t n = PyList_GET_SIZE(offsets);
    long long bit = 1LL << queue_id;
    long long mask, end;
    Py_ssize_t j;
    if (now < anchor) {
        if (pre_mask >= 0)
            mask = pre_mask;
        else if (as_int64(PyList_GET_ITEM(masks, n - 1), &mask) < 0)
            return NULL;
        end = anchor;
        j = -1;
    }
    else {
        long long pos = (now - anchor) % cycle;
        long long cycle_start = now - pos;
        j = bisect_right_ll(offsets, pos, n);
        if (j < 0)
            return NULL;
        j -= 1;
        long long boundary;
        if (j + 1 < n) {
            if (as_int64(PyList_GET_ITEM(offsets, j + 1), &boundary) < 0)
                return NULL;
        }
        else
            boundary = cycle;
        end = boundary + cycle_start;
        if (as_int64(PyList_GET_ITEM(masks, j), &mask) < 0)
            return NULL;
    }
    if (!(mask & bit))
        return PyLong_FromLong(0);
    long long total = end - now;
    Py_ssize_t p = (j < 0) ? 0 : (j + 1) % n;
    Py_ssize_t iters = (j >= 0) ? n - 1 : n;
    for (Py_ssize_t i = 0; i < iters; i++) {
        long long m;
        if (as_int64(PyList_GET_ITEM(masks, p), &m) < 0)
            return NULL;
        if (!(m & bit))
            return PyLong_FromLongLong(total);
        long long start, next;
        if (as_int64(PyList_GET_ITEM(offsets, p), &start) < 0)
            return NULL;
        if (p + 1 < n) {
            if (as_int64(PyList_GET_ITEM(offsets, p + 1), &next) < 0)
                return NULL;
        }
        else
            next = cycle;
        total += next - start;
        p = (p + 1) % n;
    }
    Py_RETURN_NONE; /* open in every entry: open forever */
}

/* ---------------------------------------------------------------- module */

static PyMethodDef fastpath_methods[] = {
    {"run_loop", fastpath_run_loop, METH_VARARGS,
     "Dispatch calendar events until empty or past `until`."},
    {"mask_at", fastpath_mask_at, METH_VARARGS,
     "Gate mask active at `now` for one lowered window table."},
    {"open_run_remaining", fastpath_open_run_remaining, METH_VARARGS,
     "ns until a queue's out-gate closes (0 closed, None never)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef fastpath_module = {
    PyModuleDef_HEAD_INIT, "_fastpath",
    "Compiled kernel dispatch + gate-window lookup (optional backend).",
    -1, fastpath_methods,
};

PyMODINIT_FUNC
PyInit__fastpath(void)
{
    str_now = PyUnicode_InternFromString("_now");
    str_live = PyUnicode_InternFromString("_live");
    str_fired = PyUnicode_InternFromString("fired");
    long_one = PyLong_FromLong(1);
    if (str_now == NULL || str_live == NULL || str_fired == NULL
        || long_one == NULL)
        return NULL;
    return PyModule_Create(&fastpath_module);
}
