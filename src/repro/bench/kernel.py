"""Kernel-bound benchmark workloads (the ``BENCH_kernel.json`` trio).

Moved here from ``benchmarks/bench_kernel.py`` so ``repro bench check``
can re-measure and gate them without shelling out; the script remains the
measurement CLI and delegates to these functions.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.kernel import Simulator

__all__ = [
    "BEFORE",
    "GATED",
    "bench_chained",
    "bench_cancel_heavy",
    "bench_star_scenario",
    "bench_star_compiled",
    "current_backend",
    "samplers",
    "measure",
    "measure_gated",
]

#: Pre-overhaul numbers (dataclass-event kernel, per-flip gate engine,
#: per-frame ``EthernetFrame`` objects on the dataplane), captured at the
#: seed commit on the same machine that produced the committed
#: BENCH_kernel.json -- the "before" half of the before/after comparison.
#: ``frames_per_s`` is derived: the star workload is deterministic, so the
#: delivered-frame count is the same before and after and the pre-overhaul
#: rate is that count over the recorded wall clock.
#: Refresh together with the baseline (see docs/performance.md).
BEFORE = {
    "chained": {"events_per_s": 676_385.3},
    "cancel_heavy": {"scheduled_per_s": 552_809.9},
    "star_scenario": {"wall_s": 1.1771, "frames_per_s": 1_264.1},
}

#: Workloads whose throughput the regression gate watches.  The star row
#: gates end-to-end frames/sec -- the fast-path acceptance metric -- not
#: events/sec, so a change that fires fewer events per frame cannot game it.
GATED: Tuple[Tuple[str, str], ...] = (
    ("chained", "events_per_s"),
    ("chained_post", "events_per_s"),
    ("cancel_heavy", "scheduled_per_s"),
    ("star_scenario", "frames_per_s"),
)


def current_backend() -> str:
    """The kernel backend a fresh ``Simulator()`` resolves to right now.

    Honours ``REPRO_BACKEND`` and compiled-extension availability, i.e.
    exactly what every workload below will actually run on.
    """
    return Simulator().backend


def bench_chained(n: int, use_post: bool) -> Dict[str, Any]:
    """Self-rescheduling event chain: pure calendar push/pop throughput."""
    sim = Simulator()
    remaining = [n]
    if use_post:
        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.post(10, tick)
        sim.post(10, tick)
    else:
        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)
        sim.schedule(10, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "events": sim.events_executed,
        "events_per_s": sim.events_executed / elapsed,
    }


def bench_cancel_heavy(n: int) -> Dict[str, Any]:
    """Schedule 4, cancel 3 per event: the cancellation-storm profile."""
    sim = Simulator()
    remaining = [n]

    def tick():
        remaining[0] -= 1
        handles = [sim.schedule(10 + i, lambda: None) for i in range(3)]
        for handle in handles:
            handle.cancel()
        if remaining[0] > 0:
            sim.schedule(10, tick)

    sim.schedule(10, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "scheduled": sim.stats.scheduled,
        "scheduled_per_s": sim.stats.scheduled / elapsed,
        "compacted": sim.stats.compacted,
    }


def bench_star_scenario(ts_count: int, duration_ms: float) -> Dict[str, Any]:
    """End-to-end ScenarioSpec.run() on a star network."""
    from repro.network.scenario import ScenarioSpec

    spec = ScenarioSpec.from_dict({
        "name": "star-bench",
        "topology": {
            "kind": "star",
            "talkers": ["talker0", "talker1"],
            "listener": "listener",
        },
        "flows": {
            "ts_count": ts_count,
            "period_us": 10_000,
            "size_bytes": 64,
            "rc_mbps": 100,
            "be_mbps": 100,
        },
        "duration_ms": duration_ms,
    })
    start = time.perf_counter()
    result = spec.run()
    elapsed = time.perf_counter() - start
    frames = result.analyzer.received()
    return {
        "wall_s": elapsed,
        "events_per_s": result.sim_stats["fired"] / elapsed,
        "frames": frames,
        "frames_per_s": frames / elapsed,
        "sim_stats": result.sim_stats,
    }


def bench_star_compiled(
    ts_count: int, duration_ms: float, repeats: int = 3
) -> Optional[Dict[str, Any]]:
    """Star workload forced onto the compiled backend; None if unavailable.

    Used by the measurement CLI to record the compiled-kernel reference
    numbers alongside a pure-Python baseline (separate section, never
    compared against ``py`` numbers by the regression gate).
    """
    from repro.sim import fastpath

    if fastpath.load() is None:
        return None
    old = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = "c"
    try:
        bench_star_scenario(ts_count, duration_ms)  # warm-up
        samples = [
            bench_star_scenario(ts_count, duration_ms)
            for _ in range(repeats)
        ]
    finally:
        if old is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = old
    return max(samples, key=lambda s: s["frames_per_s"])


def samplers(smoke: bool) -> Dict[str, Tuple[Callable[[], dict], str]]:
    """name -> (callable, throughput key) at the given scale."""
    chained_n = 30_000 if smoke else 200_000
    cancel_n = 8_000 if smoke else 50_000
    star_flows = 32 if smoke else 128
    star_ms = 5 if smoke else 40
    return {
        "chained": (
            lambda: bench_chained(chained_n, use_post=False), "events_per_s"
        ),
        "chained_post": (
            lambda: bench_chained(chained_n, use_post=True), "events_per_s"
        ),
        "cancel_heavy": (
            lambda: bench_cancel_heavy(cancel_n), "scheduled_per_s"
        ),
        "star_scenario": (
            lambda: bench_star_scenario(star_flows, star_ms), "frames_per_s"
        ),
    }


def _best(fns: Dict[str, Tuple[Callable[[], dict], str]],
          name: str, repeats: int) -> dict:
    fn, key = fns[name]
    fn()  # warm-up: first run pays allocator/cache/branch warmup
    samples = [fn() for _ in range(repeats)]
    return max(samples, key=lambda s: s[key])


def measure_gated(smoke: bool, repeats: int = 3) -> Dict[str, dict]:
    """Measure only the gated workloads (the regression-check set)."""
    fns = samplers(smoke)
    return {name: _best(fns, name, repeats) for name, _ in GATED}


def measure(smoke: bool, repeats: int = 3) -> Dict[str, dict]:
    """Measure the full workload set.

    Since the star scenario joined the gated set (its ``frames_per_s``
    is the fast-path acceptance metric) this is the gated set.
    """
    return measure_gated(smoke, repeats)
