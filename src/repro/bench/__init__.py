"""Tracked benchmark workloads and the regression gate.

The measurement cores of the ``benchmarks/`` scripts live here so the CLI
(``repro bench check``) and CI can gate performance without shelling out to
standalone scripts:

* :mod:`repro.bench.kernel` -- the kernel-bound workload trio behind
  ``BENCH_kernel.json`` (chained events, post fast path, cancellation
  storm) plus the end-to-end star scenario.
* :mod:`repro.bench.obs` -- the observability-overhead measurement behind
  ``BENCH_obs.json`` (off / metrics / full instrumentation modes).
* :mod:`repro.bench.check` -- the noise-aware trajectory checker: compare
  a fresh measurement against the committed baselines and exit nonzero on
  regression.

``benchmarks/bench_kernel.py`` and ``benchmarks/bench_obs_overhead.py``
remain the human-facing CLIs (and keep the pytest-benchmark tests); they
are thin delegates over these modules.
"""

from .kernel import (
    BEFORE,
    GATED,
    bench_cancel_heavy,
    bench_chained,
    bench_star_scenario,
)
from .obs import MODES

__all__ = [
    "BEFORE",
    "GATED",
    "MODES",
    "bench_chained",
    "bench_cancel_heavy",
    "bench_star_scenario",
]
