"""Scheduling-backend benchmark workloads (the ``BENCH_sched.json`` set).

Measurement half of the ``repro bench check --suite sched`` gate; the
``benchmarks/bench_sched.py`` script is the CLI and delegates here.

Three throughput workloads are gated:

* ``exact_capped`` -- branch-and-bound node throughput on a
  byte-constrained instance where the greedy incumbent is not provably
  optimal, capped at a fixed node budget so every run explores exactly
  the same number of nodes (the metric is pure nodes/s).
* ``anneal`` -- simulated-annealing iteration throughput on a feasible
  64-flow mixed-period instance (the backend levels the peak to the
  pigeonhole bound, so the run also sanity-checks the move kernel).
* ``greedy`` -- first-fit placement throughput on a large uniform set.

Two deterministic sections ride along ungated-by-tolerance:

* ``exact_proof`` -- an exhaustive infeasibility proof (every run must
  explore the identical node count; drift means the search changed).
* ``gap`` -- the shipped greedy-vs-exact queue-depth gap; checked for
  exact equality by the suite gate, since any change is a behaviour
  change in a backend, not noise.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple

from repro.cqf.schedule import CqfSchedule
from repro.traffic.flows import FlowSpec, TrafficClass

__all__ = [
    "GATED",
    "bench_exact_capped",
    "bench_exact_proof",
    "bench_anneal",
    "bench_greedy",
    "gap",
    "samplers",
    "measure",
    "measure_gated",
]

#: Workloads whose throughput the regression gate watches.
GATED: Tuple[Tuple[str, str], ...] = (
    ("exact_capped", "nodes_per_s"),
    ("anneal", "iters_per_s"),
    ("greedy", "flows_per_s"),
)

SLOT_NS = 50_000


def _tight_flows(count: int, period_ns: int) -> List[FlowSpec]:
    """Near-MTU flows with distinct sizes: byte-constrained, no twins.

    Two frames fill a slot's utilization budget, so placements conflict
    by bytes while the per-slot frame bound stays loose -- the shape that
    forces the exact search to actually branch instead of accepting the
    greedy seed at the root.
    """
    return [
        FlowSpec(i, TrafficClass.TS, "talker", "listener",
                 1400 + 4 * i, period_ns=period_ns)
        for i in range(count)
    ]


def _solve(flows: List[FlowSpec], backend: str, **options) -> Tuple[Any, float]:
    from repro.sched import SchedulingProblem, make_scheduler

    schedule = CqfSchedule.for_flows([f.period_ns for f in flows], SLOT_NS)
    problem = SchedulingProblem.from_flows(flows, schedule, 10**9)
    scheduler = make_scheduler(backend, **options)
    start = time.perf_counter()
    plan = scheduler.solve(problem)
    return plan, time.perf_counter() - start


def bench_exact_capped(node_limit: int) -> Dict[str, Any]:
    """Node-limited branch and bound: exactly ``node_limit`` nodes."""
    plan, elapsed = _solve(_tight_flows(13, 300_000), "exact",
                           node_limit=node_limit)
    return {
        "status": plan.status,
        "nodes": plan.nodes_explored,
        "nodes_per_s": plan.nodes_explored / elapsed,
    }


def bench_exact_proof() -> Dict[str, Any]:
    """Exhaustive infeasibility proof: 9 two-to-a-slot flows, 8 seats."""
    plan, elapsed = _solve(_tight_flows(9, 200_000), "exact")
    return {
        "status": plan.status,
        "nodes": plan.nodes_explored,
        "nodes_per_s": plan.nodes_explored / elapsed,
    }


def bench_anneal(iterations: int) -> Dict[str, Any]:
    """Seeded annealing on a feasible 64-flow mixed-period instance."""
    flows = [
        FlowSpec(i, TrafficClass.TS, "talker", "listener",
                 64 + 16 * (i % 4),
                 period_ns=100_000 if i % 2 else 400_000)
        for i in range(64)
    ]
    plan, elapsed = _solve(flows, "anneal", iterations=iterations)
    return {
        "status": plan.status,
        "peak_frames_per_slot": plan.max_frames_per_slot,
        "iterations": iterations,
        "iters_per_s": iterations / elapsed,
    }


def bench_greedy(flow_count: int, period_ns: int) -> Dict[str, Any]:
    """First-fit placement over a large uniform flow set."""
    flows = [
        FlowSpec(i, TrafficClass.TS, "talker", "listener", 64,
                 period_ns=period_ns)
        for i in range(flow_count)
    ]
    plan, elapsed = _solve(flows, "greedy")
    return {
        "status": plan.status,
        "flows": flow_count,
        "flows_per_s": flow_count / elapsed,
    }


def gap() -> Dict[str, Any]:
    """Greedy-vs-exact queue-depth gap on the shipped star instance.

    Deterministic by construction (no wall-clock content): the same
    five flows behind ``examples/sched_gap_sweep.json``.  The checker
    compares this section for exact equality.
    """
    flows = [
        FlowSpec(i, TrafficClass.TS, f"talker{i % 3}", "listener", 64,
                 period_ns=100_000)
        for i in range(3)
    ] + [
        FlowSpec(3 + i, TrafficClass.TS, f"talker{i}", "listener", 512,
                 period_ns=200_000)
        for i in range(2)
    ]
    greedy, _ = _solve(flows, "greedy")
    exact, _ = _solve(flows, "exact")
    return {
        "greedy_depth": greedy.required_queue_depth,
        "exact_depth": exact.required_queue_depth,
        "exact_status": exact.status,
        "exact_nodes": exact.nodes_explored,
        "peak_lower_bound": exact.problem.peak_lower_bound(),
    }


def samplers(smoke: bool) -> Dict[str, Tuple[Callable[[], dict], str]]:
    """name -> (callable, throughput key) at the given scale."""
    node_limit = 20_000 if smoke else 200_000
    iterations = 800 if smoke else 4_000
    greedy_flows = 500 if smoke else 2_000
    greedy_period = 1_000_000 if smoke else 4_000_000
    return {
        "exact_capped": (
            lambda: bench_exact_capped(node_limit), "nodes_per_s"
        ),
        "anneal": (lambda: bench_anneal(iterations), "iters_per_s"),
        "greedy": (
            lambda: bench_greedy(greedy_flows, greedy_period), "flows_per_s"
        ),
        "exact_proof": (bench_exact_proof, "nodes_per_s"),
    }


def _best(fns: Dict[str, Tuple[Callable[[], dict], str]],
          name: str, repeats: int) -> dict:
    fn, key = fns[name]
    fn()  # warm-up: first run pays allocator/cache/branch warmup
    samples = [fn() for _ in range(repeats)]
    return max(samples, key=lambda s: s[key])


def measure_gated(smoke: bool, repeats: int = 3) -> Dict[str, dict]:
    """Measure only the gated workload trio (the regression-check set)."""
    fns = samplers(smoke)
    return {name: _best(fns, name, repeats) for name, _ in GATED}


def measure(smoke: bool, repeats: int = 3) -> Dict[str, dict]:
    """Gated trio plus the deterministic proof workload."""
    fns = samplers(smoke)
    workloads = measure_gated(smoke, repeats)
    workloads["exact_proof"] = _best(fns, "exact_proof", repeats)
    return workloads
