"""Sharded-simulation scaling benchmark (the ``BENCH_shard.json`` curve).

Measures one ring fabric at 1/2/4 shards and reports two rates per point:

* ``frames_per_s``          -- delivered frames over *wall clock*, spawn
  and build included.  What a user actually experiences on this machine.
* ``frames_per_s_critical`` -- delivered frames over the *critical path*:
  ``max(per-shard busy) + (wall - sum(busy))``, i.e. the slowest shard's
  compute plus everything not overlapped by compute (coordination,
  barriers, build).  On a box with at least as many cores as shards the
  two converge; on fewer cores the wall clock serializes shard compute
  and only the critical path shows the parallel speedup the partition
  actually exposes.

The speedup gate therefore reads ``frames_per_s_critical`` and the
payload records ``cores`` so a reader can tell which regime produced the
numbers.  Frame counts are identical at every shard count (the
byte-determinism contract), so speedups reduce to critical-path ratios.

Lives here (not only in ``benchmarks/``) so ``repro bench check`` can
re-measure and gate without shelling out; ``benchmarks/bench_shard.py``
is the human-facing CLI on top of these functions.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Tuple

from repro.sim.shard import run_sharded

__all__ = [
    "SHARD_CURVE",
    "GATED",
    "ring_scenario",
    "bench_ring_sharded",
    "measure",
    "measure_gated",
    "samplers",
    "curve_speedup",
]

#: Shard counts measured for the scaling curve, in order.
SHARD_CURVE: Tuple[int, ...] = (1, 2, 4)

#: Curve points whose critical-path throughput the regression gate
#: watches.  The endpoints carry the claim: 1 shard anchors the baseline
#: cost of the partitioned machinery, 4 shards carries the speedup.
GATED: Tuple[Tuple[str, str], ...] = (
    ("shards_1", "frames_per_s_critical"),
    ("shards_4", "frames_per_s_critical"),
)


def ring_scenario(
    switch_count: int,
    ts_count: int,
    duration_ms: float,
    propagation_ns: int = 50_000,
) -> Dict[str, Any]:
    """The benchmark fabric: a deep unidirectional ring.

    Every frame traverses every switch, so per-shard busy time tracks the
    number of owned switches -- the workload a link-cut partition is
    supposed to parallelize.  ``propagation_ns`` doubles as the lookahead
    window; 50us keeps the epoch count (and thus coordination overhead)
    low relative to compute.
    """
    return {
        "name": f"shard-bench-ring{switch_count}",
        "topology": {
            "kind": "ring",
            "switch_count": switch_count,
            "talkers": ["talker0", "talker1"],
            "listener": "listener",
        },
        "flows": {
            "ts_count": ts_count,
            "period_us": 1_000,
            "size_bytes": 64,
        },
        "duration_ms": duration_ms,
        "propagation_ns": propagation_ns,
    }


def bench_ring_sharded(
    switch_count: int,
    shards: int,
    ts_count: int,
    duration_ms: float,
    propagation_ns: int = 50_000,
) -> Dict[str, Any]:
    """One curve point: run the ring at ``shards`` and time it."""
    scenario = ring_scenario(
        switch_count, ts_count, duration_ms, propagation_ns
    )
    start = time.perf_counter()
    result = run_sharded(scenario, shards=shards)
    wall_s = time.perf_counter() - start
    timing = result.shard_timing
    frames = result.analyzer.received()
    critical_s = timing["critical_path_s"]
    return {
        "shards": shards,
        "switches": switch_count,
        "frames": frames,
        "epochs": timing["epochs"],
        "wall_s": wall_s,
        "busy_s": [round(b, 6) for b in timing["busy_s"]],
        "critical_path_s": critical_s,
        "frames_per_s": frames / wall_s,
        "frames_per_s_critical": frames / critical_s,
    }


def _scale(smoke: bool) -> Dict[str, Any]:
    # Full scale is the acceptance fabric (>=256 switches); smoke keeps
    # CI in seconds while exercising the same partition/coordination
    # machinery end to end.
    if smoke:
        return {"switch_count": 64, "ts_count": 4, "duration_ms": 10}
    return {"switch_count": 256, "ts_count": 16, "duration_ms": 40}


def samplers(smoke: bool) -> Dict[str, Tuple[Callable[[], dict], str]]:
    """name -> (callable, throughput key) at the given scale."""
    scale = _scale(smoke)
    fns: Dict[str, Tuple[Callable[[], dict], str]] = {}
    for count in SHARD_CURVE:
        fns[f"shards_{count}"] = (
            lambda count=count: bench_ring_sharded(
                scale["switch_count"], count,
                scale["ts_count"], scale["duration_ms"],
            ),
            "frames_per_s_critical",
        )
    return fns


def _best(fns: Dict[str, Tuple[Callable[[], dict], str]],
          name: str, repeats: int) -> dict:
    fn, key = fns[name]
    samples = [fn() for _ in range(repeats)]
    return max(samples, key=lambda s: s[key])


def measure(smoke: bool, repeats: int = 3) -> Dict[str, dict]:
    """Measure the full 1/2/4-shard curve (best of ``repeats``).

    No separate warm-up pass: every sample pays its own process spawn,
    which is part of what the wall-clock rate is meant to show.
    """
    fns = samplers(smoke)
    return {name: _best(fns, name, repeats) for name in fns}


def measure_gated(smoke: bool, repeats: int = 3) -> Dict[str, dict]:
    """Measure only the gated curve points (the regression-check set)."""
    fns = samplers(smoke)
    return {name: _best(fns, name, repeats) for name, _ in GATED}


def curve_speedup(curve: Dict[str, dict]) -> Dict[str, float]:
    """Critical-path and wall-clock speedups of every point vs 1 shard."""
    base = curve.get("shards_1")
    if not base:
        return {}
    out: Dict[str, float] = {}
    for name, point in curve.items():
        if name == "shards_1":
            continue
        out[f"{name}_critical"] = round(
            base["critical_path_s"] / point["critical_path_s"], 3
        )
        out[f"{name}_wall"] = round(base["wall_s"] / point["wall_s"], 3)
    return out
