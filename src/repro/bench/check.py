"""The bench trajectory checker behind ``repro bench check``.

Loads the committed baselines (``BENCH_kernel.json`` / ``BENCH_obs.json``
/ ``BENCH_sched.json``), re-measures the corresponding workloads fresh,
and compares with noise-aware thresholds:

* **kernel** -- each gated workload's throughput must stay within
  ``tolerance`` (default 25%) of the baseline.  Smoke runs compare
  against the baseline's ``smoke_reference`` section (same workload
  sizes); per-event cost is scale-dependent, so comparing a smoke run
  against full-scale numbers would always "regress".  Baselines record
  which kernel backend (``py``/``c``) measured them; a check running on
  a different backend refuses the comparison (exit 2) rather than
  reporting the backend gap as a regression or an improvement.
* **obs** -- the metrics-mode overhead ratio must not grow more than
  ``tolerance`` (default 5 points) beyond the recorded
  ``metrics_overhead``; the occupancy-probe (headroom) overhead relative
  to metrics mode is gated separately at the recorded
  ``headroom_overhead`` plus ``HEADROOM_TOLERANCE`` (2 points) -- the
  probes are meant to be cheap enough to leave always-on.
* **sched** -- each gated scheduling-backend workload's throughput must
  stay within ``tolerance`` (default 25%) of the baseline, and the
  deterministic greedy-vs-exact ``gap`` section must match the baseline
  exactly (the backends are seeded and wall-clock-free, so any drift
  there is a behaviour change, not noise).
* **shard** -- the 1-shard and 4-shard critical-path throughputs of the
  partitioned-ring workload must stay within ``tolerance`` (default 25%)
  of the baseline (smoke compares against ``smoke_reference``, the same
  sizes), and full-scale checks additionally require the re-measured
  4-shard critical-path speedup to clear ``SHARD_SPEEDUP_FLOOR`` (2x) --
  the acceptance claim of the sharded-simulation work.  Critical-path
  rates, not wall-clock: on a box with fewer cores than shards the wall
  clock serializes shard compute and would gate the machine, not the
  partition (see :mod:`repro.bench.shard`).

Shared-runner noise protection in both suites: a measurement that looks
regressed is re-taken a few more times and judged on the best sample seen
-- a real regression cannot luck its way back above the bar, a descheduled
burst usually can.

Exit codes: 0 = within thresholds, 1 = regression, 2 = baseline missing or
unreadable.  This replaces the ad-hoc inline gate CI used to duplicate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Optional, Union

from . import kernel as bench_kernel
from . import obs as bench_obs
from . import sched as bench_sched
from . import shard as bench_shard

__all__ = [
    "KERNEL_TOLERANCE",
    "OBS_TOLERANCE",
    "HEADROOM_TOLERANCE",
    "SCHED_TOLERANCE",
    "SHARD_TOLERANCE",
    "SHARD_SPEEDUP_FLOOR",
    "check_kernel",
    "check_obs",
    "check_sched",
    "check_shard",
    "run_check",
]

#: Allowed fractional throughput regression for the kernel workloads.
KERNEL_TOLERANCE = 0.25

#: Allowed growth (absolute, in overhead fraction) of the metrics-mode
#: observability overhead, e.g. 0.05 = five percentage points.
OBS_TOLERANCE = 0.05

#: Allowed growth of the occupancy-probe (headroom-vs-metrics) overhead.
#: Tighter than OBS_TOLERANCE: the probes' acceptance bar is "cheap
#: enough to leave on", so drift is capped at two points.
HEADROOM_TOLERANCE = 0.02

#: Allowed fractional throughput regression for the scheduling backends.
SCHED_TOLERANCE = 0.25

#: Allowed fractional critical-path throughput regression for the
#: sharded-simulation curve points.
SHARD_TOLERANCE = 0.25

#: Minimum re-measured 4-shard critical-path speedup at full scale --
#: the sharded-simulation acceptance bar.  Not applied to smoke runs:
#: the smoke fabric is deliberately small enough that coordination
#: overhead can eat the parallelism.
SHARD_SPEEDUP_FLOOR = 2.0

#: Remeasure attempts before a regressed-looking sample is believed.
NOISE_RETRIES = 4


def _load_baseline(path: Union[str, Path], suite: str) -> Optional[dict]:
    path = Path(path)
    if not path.exists():
        print(f"# bench check [{suite}]: no baseline at {path}",
              file=sys.stderr)
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"# bench check [{suite}]: unreadable baseline {path}: {exc}",
              file=sys.stderr)
        return None


def check_kernel(
    baseline_path: Union[str, Path],
    smoke: bool = False,
    tolerance: Optional[float] = None,
    repeats: int = 3,
) -> int:
    """Gate the kernel workload trio against ``BENCH_kernel.json``."""
    tolerance = KERNEL_TOLERANCE if tolerance is None else tolerance
    baseline = _load_baseline(baseline_path, "kernel")
    if baseline is None:
        return 2
    # Throughput baselines are backend-specific: comparing a compiled-kernel
    # run against a pure-Python baseline (or vice versa) measures the
    # backend gap, not a regression.  Refuse rather than mislead.
    backend = bench_kernel.current_backend()
    recorded_backend = baseline.get("backend", "py")
    print(f"# bench check [kernel]: backend={backend} "
          f"(baseline recorded {recorded_backend})", file=sys.stderr)
    if backend != recorded_backend:
        print(f"# bench check [kernel]: refusing {backend}-vs-"
              f"{recorded_backend} comparison -- rerun with "
              f"REPRO_BACKEND={recorded_backend}, or regenerate the "
              f"baseline on this backend "
              f"(benchmarks/bench_kernel.py --output)", file=sys.stderr)
        return 2
    section = "smoke_reference" if smoke else "after"
    reference = baseline.get(section, {})
    if not reference:
        print(f"# bench check [kernel]: baseline has no {section!r} "
              f"section", file=sys.stderr)
        return 2
    fns = bench_kernel.samplers(smoke)
    workloads = bench_kernel.measure_gated(smoke, repeats)
    failures = []
    for name, key in bench_kernel.GATED:
        ref = reference.get(name, {}).get(key)
        if ref is None:
            continue
        got = workloads[name][key]
        retries = 0
        while got / ref < 1.0 - tolerance and retries < NOISE_RETRIES:
            got = max(got, fns[name][0]()[key])
            retries += 1
        ratio = got / ref
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(f"# check {name}.{key}: {got:,.0f} vs baseline {ref:,.0f} "
              f"({(ratio - 1) * 100:+.1f}%, {retries} remeasure(s)) {status}",
              file=sys.stderr)
        if ratio < 1.0 - tolerance:
            failures.append(name)
    if failures:
        print(f"# throughput regression >{tolerance:.0%} in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def check_obs(
    baseline_path: Union[str, Path],
    smoke: bool = False,
    tolerance: Optional[float] = None,
) -> int:
    """Gate the metrics-mode overhead against ``BENCH_obs.json``."""
    # An explicit --tolerance override applies to both gates; the defaults
    # differ (the probe gate is tighter).
    headroom_tolerance = (
        HEADROOM_TOLERANCE if tolerance is None else tolerance
    )
    tolerance = OBS_TOLERANCE if tolerance is None else tolerance
    baseline = _load_baseline(baseline_path, "obs")
    if baseline is None:
        return 2
    # Overhead is scale-dependent (fixed per-run costs dominate a tiny
    # smoke run), so smoke checks compare against the baseline's
    # smoke-scale section -- same convention as the kernel gate.
    section = baseline.get("smoke_reference", {}) if smoke else baseline
    recorded = section.get("metrics_overhead")
    if recorded is None:
        where = "'smoke_reference.metrics_overhead'" if smoke \
            else "'metrics_overhead'"
        print(f"# bench check [obs]: baseline has no {where}",
              file=sys.stderr)
        return 2
    recorded_headroom = section.get("headroom_overhead")
    if recorded_headroom is None:
        print("# bench check [obs]: baseline has no 'headroom_overhead'; "
              "probe gate skipped (regenerate with "
              "benchmarks/bench_obs_overhead.py)", file=sys.stderr)
    ts_count = 8 if smoke else 128
    duration_ns = 5_000_000 if smoke else 40_000_000
    repeats = 1 if smoke else 3

    def sample() -> dict:
        """Both gated overheads from one measurement pass."""
        modes = bench_obs.measure(ts_count, duration_ns, repeats)
        return {
            "metrics": modes["metrics"]["vs_off"] - 1.0,
            "headroom": modes["headroom"]["vs_metrics"] - 1.0,
        }

    gates = [("metrics_overhead", "metrics", recorded, tolerance)]
    if recorded_headroom is not None:
        gates.append(
            ("headroom_overhead", "headroom", recorded_headroom,
             headroom_tolerance)
        )
    # Overhead can only look *worse* through noise (a descheduled
    # instrumented run), so judge each gate on the best (lowest) overhead
    # seen; a retry re-samples both gates from one measurement pass.
    best = sample()
    retries = 0
    while retries < NOISE_RETRIES and any(
        best[key] > ref + tol for _, key, ref, tol in gates
    ):
        fresh = sample()
        best = {key: min(best[key], fresh[key]) for key in best}
        retries += 1
    failed = []
    for name, key, ref, tol in gates:
        bar = ref + tol
        overhead = best[key]
        status = "ok" if overhead <= bar else "REGRESSED"
        print(f"# check {name}: {overhead * 100:+.2f}% vs recorded "
              f"{ref * 100:+.2f}% (bar {bar * 100:+.2f}%, "
              f"{retries} remeasure(s)) {status}", file=sys.stderr)
        if overhead > bar:
            failed.append((name, tol))
    if failed:
        for name, tol in failed:
            print(f"# {name} grew more than {tol * 100:.0f} points past "
                  f"the baseline", file=sys.stderr)
        return 1
    return 0


def check_sched(
    baseline_path: Union[str, Path],
    smoke: bool = False,
    tolerance: Optional[float] = None,
    repeats: int = 3,
) -> int:
    """Gate the scheduling backends against ``BENCH_sched.json``.

    Two kinds of gate: the throughput trio is noise-tolerant (same
    remeasure-on-regression protocol as the kernel suite), while the
    ``gap`` section is compared for exact equality -- the backends are
    deterministic, so any drift there is a behaviour change, not noise.
    """
    tolerance = SCHED_TOLERANCE if tolerance is None else tolerance
    baseline = _load_baseline(baseline_path, "sched")
    if baseline is None:
        return 2
    section = "smoke_reference" if smoke else "workloads"
    reference = baseline.get(section, {})
    if not reference:
        print(f"# bench check [sched]: baseline has no {section!r} "
              f"section", file=sys.stderr)
        return 2
    fns = bench_sched.samplers(smoke)
    workloads = bench_sched.measure_gated(smoke, repeats)
    failures = []
    for name, key in bench_sched.GATED:
        ref = reference.get(name, {}).get(key)
        if ref is None:
            continue
        got = workloads[name][key]
        retries = 0
        while got / ref < 1.0 - tolerance and retries < NOISE_RETRIES:
            got = max(got, fns[name][0]()[key])
            retries += 1
        ratio = got / ref
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(f"# check {name}.{key}: {got:,.0f} vs baseline {ref:,.0f} "
              f"({(ratio - 1) * 100:+.1f}%, {retries} remeasure(s)) {status}",
              file=sys.stderr)
        if ratio < 1.0 - tolerance:
            failures.append(name)
    recorded_gap = baseline.get("gap")
    if recorded_gap is None:
        print("# bench check [sched]: baseline has no 'gap' section; "
              "equality gate skipped (regenerate with "
              "benchmarks/bench_sched.py)", file=sys.stderr)
    else:
        measured_gap = bench_sched.gap()
        status = "ok" if measured_gap == recorded_gap else "CHANGED"
        print(f"# check gap: greedy depth {measured_gap['greedy_depth']} / "
              f"exact depth {measured_gap['exact_depth']} "
              f"({measured_gap['exact_status']}, "
              f"{measured_gap['exact_nodes']} nodes) {status}",
              file=sys.stderr)
        if measured_gap != recorded_gap:
            print(f"# gap section drifted from baseline {recorded_gap}; "
                  f"a scheduling backend changed behaviour",
                  file=sys.stderr)
            failures.append("gap")
    if failures:
        print(f"# sched regression in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def check_shard(
    baseline_path: Union[str, Path],
    smoke: bool = False,
    tolerance: Optional[float] = None,
    repeats: int = 3,
) -> int:
    """Gate the sharded-simulation curve against ``BENCH_shard.json``.

    Two gates: the 1- and 4-shard critical-path throughputs must stay
    within ``tolerance`` of the baseline (noise-tolerant, same
    remeasure-on-regression protocol as the kernel suite), and at full
    scale the re-measured 4-shard critical-path speedup must clear
    :data:`SHARD_SPEEDUP_FLOOR`.
    """
    tolerance = SHARD_TOLERANCE if tolerance is None else tolerance
    baseline = _load_baseline(baseline_path, "shard")
    if baseline is None:
        return 2
    section = "smoke_reference" if smoke else "after"
    reference = baseline.get(section, {})
    if not reference:
        print(f"# bench check [shard]: baseline has no {section!r} "
              f"section", file=sys.stderr)
        return 2
    fns = bench_shard.samplers(smoke)
    best = bench_shard.measure_gated(smoke, repeats)
    failures = []
    for name, key in bench_shard.GATED:
        ref = reference.get(name, {}).get(key)
        if ref is None:
            continue
        retries = 0
        while best[name][key] / ref < 1.0 - tolerance \
                and retries < NOISE_RETRIES:
            fresh = fns[name][0]()
            if fresh[key] > best[name][key]:
                best[name] = fresh
            retries += 1
        ratio = best[name][key] / ref
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(f"# check {name}.{key}: {best[name][key]:,.0f} vs baseline "
              f"{ref:,.0f} ({(ratio - 1) * 100:+.1f}%, "
              f"{retries} remeasure(s)) {status}", file=sys.stderr)
        if ratio < 1.0 - tolerance:
            failures.append(name)
    if not smoke and "shards_1" in best and "shards_4" in best:
        # The acceptance claim, recomputed from the best samples above
        # (the throughput retries already absorbed scheduler noise).
        speedup = (best["shards_1"]["critical_path_s"]
                   / best["shards_4"]["critical_path_s"])
        status = "ok" if speedup >= SHARD_SPEEDUP_FLOOR else "REGRESSED"
        print(f"# check shard speedup: {speedup:.2f}x critical-path at "
              f"4 shards (floor {SHARD_SPEEDUP_FLOOR:.1f}x) {status}",
              file=sys.stderr)
        if speedup < SHARD_SPEEDUP_FLOOR:
            failures.append("speedup")
    if failures:
        print(f"# shard regression in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def run_check(
    suite: str = "all",
    smoke: bool = False,
    kernel_baseline: Union[str, Path] = "BENCH_kernel.json",
    obs_baseline: Union[str, Path] = "BENCH_obs.json",
    sched_baseline: Union[str, Path] = "BENCH_sched.json",
    shard_baseline: Union[str, Path] = "BENCH_shard.json",
    tolerance: Optional[float] = None,
) -> int:
    """Run the selected suite(s); worst exit status wins."""
    statuses = []
    if suite in ("kernel", "all"):
        statuses.append(
            check_kernel(kernel_baseline, smoke=smoke, tolerance=tolerance)
        )
    if suite in ("obs", "all"):
        statuses.append(
            check_obs(obs_baseline, smoke=smoke, tolerance=tolerance)
        )
    if suite in ("sched", "all"):
        statuses.append(
            check_sched(sched_baseline, smoke=smoke, tolerance=tolerance)
        )
    if suite in ("shard", "all"):
        statuses.append(
            check_shard(shard_baseline, smoke=smoke, tolerance=tolerance)
        )
    return max(statuses) if statuses else 2
