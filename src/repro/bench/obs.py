"""Observability-overhead measurement (the ``BENCH_obs.json`` core).

Moved here from ``benchmarks/bench_obs_overhead.py`` so ``repro bench
check`` can re-measure the instrumented-vs-bare ratio without shelling
out; the script remains the measurement CLI and delegates here.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict

__all__ = ["MODES", "run_once", "measure"]

MODES = ("off", "metrics", "headroom", "full")


def _build_flows(ts_count: int):
    from repro.core.units import mbps
    from repro.traffic.iec60802 import (
        background_flows,
        production_cell_flows,
    )

    flows = production_cell_flows(["talker0"], "listener",
                                  flow_count=ts_count)
    for flow in background_flows(["talker0"], "listener",
                                 mbps(100), mbps(100)):
        flows.add(flow)
    return flows


def run_once(mode: str, ts_count: int, duration_ns: int) -> float:
    """One timed ring-scenario run in the given instrumentation mode."""
    from repro.core.presets import customized_config
    from repro.core.units import us
    from repro.network.testbed import Testbed
    from repro.network.topology import ring_topology
    from repro.obs.flowspans import FlowSpanRecorder
    from repro.obs.headroom import HeadroomRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timeseries import TimeSeriesSampler

    topology = ring_topology(switch_count=3, talkers=["talker0"])
    flows = _build_flows(ts_count)
    config = customized_config(topology.max_enabled_ports)
    registry = MetricsRegistry() if mode in ("metrics", "headroom", "full") \
        else None
    spans = FlowSpanRecorder() if mode == "full" else None
    headroom = (
        HeadroomRecorder() if mode in ("headroom", "full") else None
    )
    testbed = Testbed(topology, config, flows, slot_ns=62_500,
                      metrics=registry, spans=spans, headroom=headroom)
    if mode == "full":
        sampler = TimeSeriesSampler(registry, testbed.sim,
                                    interval_ns=us(1000))
        sampler.start()
    testbed.build()  # outside the timer: measure the event loop, not setup
    start = time.perf_counter()
    testbed.run(duration_ns=duration_ns)
    return time.perf_counter() - start


def measure(ts_count: int, duration_ns: int, repeats: int) -> Dict[str, dict]:
    """Per-mode timings plus each mode's ratio against ``off``.

    The ``headroom`` mode additionally records ``vs_metrics`` -- the
    occupancy probes' marginal cost over an identical metrics-only run,
    the ratio gated by ``repro bench check --suite obs``.
    """
    results: Dict[str, dict] = {}
    for mode in MODES:
        run_once(mode, ts_count, duration_ns)  # warm-up (imports, caches)
        times = [
            run_once(mode, ts_count, duration_ns) for _ in range(repeats)
        ]
        results[mode] = {
            "best_s": min(times),
            "mean_s": statistics.mean(times),
            "runs": times,
        }
    baseline = results["off"]["best_s"]
    for mode in MODES:
        results[mode]["vs_off"] = results[mode]["best_s"] / baseline
    results["headroom"]["vs_metrics"] = (
        results["headroom"]["best_s"] / results["metrics"]["best_s"]
    )
    return results
