"""Fault plans: the declarative ``"faults"`` scenario stanza.

A plan is a list of timed fault events, each applied relative to traffic
start (after any gPTP warmup), so the same plan means the same thing in
every scenario regardless of warmup settings::

    "faults": {
      "events": [
        {"kind": "link_down", "link": "sw0.p1", "at_us": 10000},
        {"kind": "loss_burst", "link": "sw0.p0", "at_us": 5000,
         "duration_us": 2000, "rate": 0.5},
        {"kind": "gm_down", "node": "sw0", "at_us": 20000},
        {"kind": "freq_step", "node": "sw2", "at_us": 1000,
         "drift_ppm": 40.0},
        {"kind": "buffer_shrink", "switch": "sw1", "at_us": 8000,
         "duration_us": 4000, "slots": 8}
      ]
    }

Validation follows the strict :class:`~repro.network.scenario.ScenarioSpec`
machinery: :func:`validate_faults_dict` returns every problem as a
``"path: message"`` string (with nearest-key suggestions), and
:meth:`FaultPlan.from_dict` raises one
:class:`~repro.core.errors.SpecValidationError` listing all of them.

Times accept ``*_us`` or ``*_ns`` suffixes (exclusive, like the SLO
stanza).  Every event kind, its target field and its parameters are listed
in :data:`FAULT_KINDS`.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError, SpecValidationError
from repro.core.units import us

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "validate_faults_dict"]

#: kind -> (target field, required params, optional params).  Time fields
#: (``at`` always, ``duration`` where listed) are handled separately
#: because of the ``_us``/``_ns`` suffix choice.
FAULT_KINDS: Dict[str, Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = {
    # link faults
    "link_down": ("link", (), ("duration",)),   # duration => auto-restore
    "link_up": ("link", (), ()),
    "loss_burst": ("link", ("duration",), ("rate",)),
    "corrupt_burst": ("link", ("duration",), ("rate",)),
    # clock faults
    "gm_down": ("node", (), ()),
    "gm_up": ("node", (), ()),
    "clock_step": ("node", ("offset_ns",), ()),
    "freq_step": ("node", ("drift_ppm",), ()),
    # buffer-pressure faults
    "buffer_shrink": ("switch", ("slots",), ("duration",)),
}

_TIME_PARAMS = ("at", "duration")


def _suggest(key: str, candidates) -> str:
    matches = difflib.get_close_matches(key, sorted(candidates), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _read_time_ns(
    problems: List[str],
    path: str,
    event: Mapping[str, Any],
    base: str,
    required: bool,
) -> Optional[int]:
    """Read ``{base}_us`` / ``{base}_ns`` (exclusive) as integer ns."""
    us_key, ns_key = f"{base}_us", f"{base}_ns"
    if us_key in event and ns_key in event:
        problems.append(
            f"{path}: give either {us_key!r} or {ns_key!r}, not both"
        )
        return None
    if us_key not in event and ns_key not in event:
        if required:
            problems.append(f"{path}.{base}: required ({us_key} or {ns_key})")
        return None
    key = us_key if us_key in event else ns_key
    value = event[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        problems.append(
            f"{path}.{key}: expected a number, "
            f"got {type(value).__name__} {value!r}"
        )
        return None
    if value < 0:
        problems.append(f"{path}.{key}: must be >= 0, got {value!r}")
        return None
    return us(value) if key == us_key else int(value)


def _event_problems(
    problems: List[str], path: str, event: Any
) -> Optional[Dict[str, Any]]:
    """Validate one event dict; return normalized fields when clean."""
    if not isinstance(event, Mapping):
        problems.append(
            f"{path}: expected an object, got {type(event).__name__}"
        )
        return None
    kind = event.get("kind")
    if kind not in FAULT_KINDS:
        problems.append(
            f"{path}.kind: expected one of {sorted(FAULT_KINDS)}, "
            f"got {kind!r}{_suggest(str(kind), FAULT_KINDS)}"
        )
        return None
    target_field, required, optional = FAULT_KINDS[kind]
    scalar_params = tuple(
        p for p in required + optional if p not in _TIME_PARAMS
    )
    known = {"kind", target_field} | set(scalar_params)
    for base in _TIME_PARAMS:
        if base == "at" or base in required + optional:
            known |= {f"{base}_us", f"{base}_ns"}
    for key in sorted(set(event) - known):
        problems.append(
            f"{path}.{key}: unknown parameter for {kind!r}"
            f"{_suggest(key, known)}"
        )

    before = len(problems)
    target = event.get(target_field)
    if not isinstance(target, str) or not target:
        problems.append(
            f"{path}.{target_field}: required, expected a non-empty string, "
            f"got {target!r}"
        )
    at_ns = _read_time_ns(problems, path, event, "at", required=True)
    duration_ns = None
    if "duration" in required + optional:
        duration_ns = _read_time_ns(
            problems, path, event, "duration",
            required="duration" in required,
        )
        if duration_ns is not None and duration_ns <= 0:
            problems.append(f"{path}: duration must be positive")

    fields: Dict[str, Any] = {
        "kind": kind, "target": target, "at_ns": at_ns,
        "duration_ns": duration_ns,
    }
    if "rate" in scalar_params:
        rate = event.get("rate", 1.0)
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            problems.append(
                f"{path}.rate: expected a number, got {rate!r}"
            )
        elif not 0.0 < rate <= 1.0:
            problems.append(
                f"{path}.rate: expected a rate in (0, 1], got {rate!r}"
            )
        else:
            fields["rate"] = float(rate)
    if "offset_ns" in scalar_params:
        offset = event.get("offset_ns")
        if isinstance(offset, bool) or not isinstance(offset, int):
            problems.append(
                f"{path}.offset_ns: required, expected an integer, "
                f"got {offset!r}"
            )
        else:
            fields["offset_ns"] = offset
    if "drift_ppm" in scalar_params:
        drift = event.get("drift_ppm")
        if isinstance(drift, bool) or not isinstance(drift, (int, float)):
            problems.append(
                f"{path}.drift_ppm: required, expected a number, "
                f"got {drift!r}"
            )
        else:
            fields["drift_ppm"] = float(drift)
    if "slots" in scalar_params:
        slots = event.get("slots")
        if isinstance(slots, bool) or not isinstance(slots, int):
            problems.append(
                f"{path}.slots: required, expected an integer, got {slots!r}"
            )
        elif slots < 1:
            problems.append(f"{path}.slots: must be >= 1, got {slots}")
        else:
            fields["slots"] = slots
    return fields if len(problems) == before else None


def validate_faults_dict(
    data: Any, prefix: str = "faults"
) -> List[str]:
    """Every problem the ``"faults"`` stanza has, as path-prefixed strings."""
    problems: List[str] = []
    if not isinstance(data, Mapping):
        return [f"{prefix}: expected an object, got {type(data).__name__}"]
    for key in sorted(set(data) - {"events"}):
        problems.append(
            f"{prefix}.{key}: unknown key{_suggest(key, ('events',))}"
        )
    events = data.get("events")
    if events is None:
        problems.append(f"{prefix}.events: required key is missing")
    elif not isinstance(events, list):
        problems.append(
            f"{prefix}.events: expected a list, got {type(events).__name__}"
        )
    else:
        for index, event in enumerate(events):
            _event_problems(problems, f"{prefix}.events[{index}]", event)
    return problems


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, times relative to traffic start (ns)."""

    kind: str
    target: str
    at_ns: int
    duration_ns: Optional[int] = None
    rate: float = 1.0             # loss_burst / corrupt_burst fraction
    offset_ns: int = 0            # clock_step phase jump
    drift_ppm: float = 0.0        # freq_step new oscillator error
    slots: int = 0                # buffer_shrink seized slots per pool

    @property
    def end_ns(self) -> Optional[int]:
        if self.duration_ns is None:
            return None
        return self.at_ns + self.duration_ns

    def describe(self) -> str:
        """Compact human-readable form for timelines."""
        parts = [f"{self.kind} {self.target}"]
        if self.duration_ns is not None:
            parts.append(f"for {self.duration_ns / 1000:g}us")
        if self.kind in ("loss_burst", "corrupt_burst") and self.rate < 1.0:
            parts.append(f"rate={self.rate:g}")
        if self.kind == "clock_step":
            parts.append(f"offset={self.offset_ns}ns")
        if self.kind == "freq_step":
            parts.append(f"drift={self.drift_ppm:g}ppm")
        if self.kind == "buffer_shrink":
            parts.append(f"slots={self.slots}")
        return " ".join(parts)


class FaultPlan:
    """A validated, ordered schedule of fault events."""

    def __init__(self, events: List[FaultEvent]):
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at_ns, e.kind, e.target))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon_ns(self) -> int:
        """Latest instant any event is still acting (ns after start)."""
        horizon = 0
        for event in self.events:
            horizon = max(horizon, event.end_ns or event.at_ns)
        return horizon

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        problems = validate_faults_dict(data)
        if problems:
            raise SpecValidationError("fault plan", problems)
        events = []
        for index, event in enumerate(data["events"]):
            fields = _event_problems([], f"faults.events[{index}]", event)
            assert fields is not None  # validated above
            events.append(FaultEvent(**fields))
        if not events:
            raise ConfigurationError(
                "fault plan declares no events; drop the stanza instead"
            )
        return cls(events)

    def to_dict(self) -> Dict[str, Any]:
        rows = []
        for event in self.events:
            row: Dict[str, Any] = {
                "kind": event.kind,
                FAULT_KINDS[event.kind][0]: event.target,
                "at_ns": event.at_ns,
            }
            if event.duration_ns is not None:
                row["duration_ns"] = event.duration_ns
            if event.kind in ("loss_burst", "corrupt_burst"):
                row["rate"] = event.rate
            if event.kind == "clock_step":
                row["offset_ns"] = event.offset_ns
            if event.kind == "freq_step":
                row["drift_ppm"] = event.drift_ppm
            if event.kind == "buffer_shrink":
                row["slots"] = event.slots
            rows.append(row)
        return {"events": rows}
