"""Deterministic, scripted fault injection for scenario runs.

The resilience claims of a TSN switch -- 802.1CB seamless redundancy,
gPTP holdover and re-election, graceful degradation under buffer pressure
-- only mean something when exercised.  This package supplies the
adversarial harness:

* :class:`~repro.faults.plan.FaultPlan` -- a validated, JSON-declarable
  schedule of link, clock and buffer faults (the scenario ``"faults"``
  stanza);
* :class:`~repro.faults.injector.FaultInjector` -- executes the plan as
  kernel ``post_at`` events inside a running testbed, so faulted runs stay
  byte-deterministic and campaign-sweepable;
* :class:`~repro.faults.injector.FaultReport` -- the recovery-observability
  digest: fault timeline, per-link loss, FRER elimination counters, and
  gPTP failover latency.

See ``docs/faults.md`` for the plan schema and determinism guarantees.
"""

from .plan import FAULT_KINDS, FaultEvent, FaultPlan, validate_faults_dict
from .injector import FAULT_EVENT_PRIORITY, FaultInjector, FaultReport

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "validate_faults_dict",
    "FAULT_EVENT_PRIORITY",
    "FaultInjector",
    "FaultReport",
]
