"""Executes a :class:`~repro.faults.plan.FaultPlan` inside a testbed.

Every fault is applied as a kernel ``post_at`` event at ``start + at_ns``
(*start* = traffic start, after any gPTP warmup), with a priority ahead of
the dataplane so same-instant ordering is well defined; partial loss and
corruption windows draw from named :class:`~repro.sim.rng.RngFactory`
substreams.  Two runs of the same seeded scenario therefore produce
byte-identical traces, faults included -- the property the campaign
engine's determinism smoke asserts.

The injector also closes the observability loop: :meth:`FaultInjector.
report` digests what the faults did (frames blackholed/lost/corrupted per
link, FRER eliminations, gPTP elections and failover latency) into a
:class:`FaultReport`, mirrored into the metrics registry when one is
attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.errors import ConfigurationError
from .plan import FaultEvent, FaultPlan

__all__ = ["FAULT_EVENT_PRIORITY", "FaultInjector", "FaultReport"]

#: Fault events fire before gate wakeups (-10) and dataplane events (0)
#: scheduled at the same instant, so "cut at T" deterministically affects
#: the frame transmitted at T.
FAULT_EVENT_PRIORITY = -16


@dataclass
class FaultReport:
    """Recovery-observability digest of one faulted run."""

    timeline: List[Dict[str, Any]] = field(default_factory=list)
    links: Dict[str, Dict[str, int]] = field(default_factory=dict)
    frer: Dict[str, Dict[str, int]] = field(default_factory=dict)
    gptp: Optional[Dict[str, Any]] = None

    @property
    def frames_lost_in_failover(self) -> int:
        """Frames the faulted links destroyed (blackholed + lost + corrupt).

        Under FRER this is the *redundancy* absorbing the fault: the frames
        existed only as one member stream's replicas, so stream-level loss
        can still be zero.
        """
        return sum(
            stats["blackholed"] + stats["fault_lost"]
            + stats["fault_corrupted"]
            for stats in self.links.values()
        )

    @property
    def frer_eliminated(self) -> int:
        return sum(s["eliminated"] for s in self.frer.values())

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "timeline": list(self.timeline),
            "links": {k: dict(v) for k, v in self.links.items()},
            "frames_lost_in_failover": self.frames_lost_in_failover,
        }
        if self.frer:
            data["frer"] = {k: dict(v) for k, v in self.frer.items()}
        if self.gptp is not None:
            data["gptp"] = dict(self.gptp)
        return data


class FaultInjector:
    """Schedules and applies one plan's events on a built testbed.

    Target resolution happens eagerly at construction so a plan naming a
    link or switch that does not exist fails before the run starts, with
    the list of valid names in the error.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sim,
        links,
        switches: Dict[str, Any],
        rng,
        sync_domain=None,
        metrics=None,
    ) -> None:
        self.plan = plan
        self._sim = sim
        self._links = list(links)
        self._switches = dict(switches)
        self._rng = rng
        self._sync_domain = sync_domain
        self._metrics = metrics
        self.executed: List[Dict[str, Any]] = []
        self._armed = False
        self._touched_links: Dict[str, Any] = {}
        self._seized: Dict[int, List[tuple]] = {}
        # (event index -> resolved target object) decided up front
        self._resolved: List[Any] = [
            self._resolve(index, event)
            for index, event in enumerate(plan.events)
        ]

    # ------------------------------------------------------------ resolution

    def _resolve(self, index: int, event: FaultEvent):
        kind = event.kind
        if kind in ("link_down", "link_up", "loss_burst", "corrupt_burst"):
            return self._resolve_link(index, event.target)
        if kind in ("gm_down", "gm_up"):
            if self._sync_domain is None:
                raise ConfigurationError(
                    f"faults.events[{index}]: {kind!r} needs gPTP "
                    f"(set enable_gptp in the scenario)"
                )
            if event.target not in self._sync_domain.nodes:
                raise ConfigurationError(
                    f"faults.events[{index}]: unknown gPTP node "
                    f"{event.target!r}; have "
                    f"{sorted(self._sync_domain.nodes)}"
                )
            return event.target
        if kind in ("clock_step", "freq_step", "buffer_shrink"):
            switch = self._switches.get(event.target)
            if switch is None:
                raise ConfigurationError(
                    f"faults.events[{index}]: unknown switch "
                    f"{event.target!r}; have {sorted(self._switches)}"
                )
            return switch
        raise ConfigurationError(f"unknown fault kind {kind!r}")

    def _resolve_link(self, index: int, target: str):
        exact = [link for link in self._links if link.name == target]
        if len(exact) == 1:
            return exact[0]
        prefixed = [
            link for link in self._links if link.name.startswith(target)
        ]
        if len(prefixed) == 1:
            return prefixed[0]
        names = sorted(link.name for link in self._links)
        if not prefixed:
            raise ConfigurationError(
                f"faults.events[{index}]: no link matches {target!r}; "
                f"have {names}"
            )
        raise ConfigurationError(
            f"faults.events[{index}]: {target!r} is ambiguous, matches "
            f"{sorted(link.name for link in prefixed)}"
        )

    # --------------------------------------------------------------- arming

    def arm(self, start_ns: int) -> None:
        """Schedule every event at ``start_ns + event.at_ns``."""
        if self._armed:
            raise ConfigurationError("fault plan already armed")
        self._armed = True
        for index, event in enumerate(self.plan.events):
            target = self._resolved[index]
            self._sim.post_at(
                start_ns + event.at_ns,
                lambda e=event, t=target, i=index: self._apply(e, t, i),
                priority=FAULT_EVENT_PRIORITY,
            )
            end = event.end_ns
            if end is not None:
                self._sim.post_at(
                    start_ns + end,
                    lambda e=event, t=target, i=index: self._clear(e, t, i),
                    priority=FAULT_EVENT_PRIORITY,
                )

    # ------------------------------------------------------------ application

    def _record(self, event: FaultEvent, detail: str) -> None:
        self.executed.append(
            {
                "time_ns": self._sim.now,
                "kind": event.kind,
                "target": event.target,
                "detail": detail,
            }
        )
        # A fault firing is exactly what a post-mortem wants pinned next to
        # the last kernel events, so annotate any attached flight recorder.
        flight = getattr(self._sim, "flight", None)
        if flight is not None:
            flight.note(
                f"fault.{event.kind}", detail, time_ns=self._sim.now
            )
        if self._metrics is not None:
            self._metrics.counter(
                "fault_events_total",
                help="fault-plan events applied, by kind",
            ).inc(kind=event.kind)

    def _apply(self, event: FaultEvent, target, index: int) -> None:
        kind = event.kind
        if kind == "link_down":
            target.fail()
            self._touched_links[target.name] = target
            self._record(event, f"{target.name} down")
        elif kind == "link_up":
            target.restore()
            self._touched_links[target.name] = target
            self._record(event, f"{target.name} up")
        elif kind == "loss_burst":
            target.set_fault_loss(
                event.rate, self._rng.stream(f"fault.{index}.loss")
            )
            self._touched_links[target.name] = target
            self._record(
                event, f"{target.name} losing {event.rate:g} of frames"
            )
        elif kind == "corrupt_burst":
            target.set_fault_corrupt(
                event.rate, self._rng.stream(f"fault.{index}.corrupt")
            )
            self._touched_links[target.name] = target
            self._record(
                event, f"{target.name} corrupting {event.rate:g} of frames"
            )
        elif kind == "gm_down":
            self._sync_domain.fail_node(target)
            self._record(event, f"grandmaster {target} dead")
        elif kind == "gm_up":
            self._sync_domain.restore_node(target)
            self._record(event, f"node {target} rejoined")
        elif kind == "clock_step":
            target.clock.step(event.offset_ns)
            self._record(
                event, f"{event.target} phase stepped {event.offset_ns}ns"
            )
        elif kind == "freq_step":
            target.clock.set_drift_ppm(event.drift_ppm)
            self._record(
                event,
                f"{event.target} oscillator now {event.drift_ppm:g}ppm",
            )
        elif kind == "buffer_shrink":
            seized: List[tuple] = []
            total = 0
            for pool in self._unique_pools(target):
                taken = pool.seize(event.slots)
                total += len(taken)
                seized.append((pool, taken))
            self._seized[index] = seized
            self._record(
                event, f"{event.target} pools shrunk by {total} slots"
            )

    def _clear(self, event: FaultEvent, target, index: int) -> None:
        kind = event.kind
        if kind == "link_down":
            target.restore()
            self._record(event, f"{target.name} up (auto)")
        elif kind == "loss_burst":
            target.set_fault_loss(0.0)
            self._record(event, f"{target.name} loss window over")
        elif kind == "corrupt_burst":
            target.set_fault_corrupt(0.0)
            self._record(event, f"{target.name} corruption window over")
        elif kind == "buffer_shrink":
            returned = 0
            for pool, taken in self._seized.pop(index, []):
                pool.unseize(taken)
                returned += len(taken)
            self._record(event, f"{event.target} pools restored ({returned})")

    @staticmethod
    def _unique_pools(switch) -> List[Any]:
        pools: List[Any] = []
        for port in switch.ports:
            if not any(port.pool is pool for pool in pools):
                pools.append(port.pool)
        return pools

    # ------------------------------------------------------------- reporting

    def report(self, frer_eliminators: Optional[Dict] = None) -> FaultReport:
        """Digest the run's recovery behaviour (call after the run ends)."""
        report = FaultReport(timeline=list(self.executed))
        for name in sorted(self._touched_links):
            report.links[name] = self._touched_links[name].fault_counters()
        for listener, eliminator in sorted((frer_eliminators or {}).items()):
            report.frer[listener] = {
                "eliminated": eliminator.duplicates_eliminated,
                "rogue": eliminator.rogue_frames,
            }
        domain = self._sync_domain
        if domain is not None:
            report.gptp = {
                "elections": domain.elections,
                "failover_latencies_ns": domain.failover_latencies_ns(),
                "grandmaster": (
                    domain.grandmaster.name
                    if domain._grandmaster is not None else None
                ),
                "max_abs_offset_ns": domain.max_abs_offset_ns(),
            }
        if self._metrics is not None:
            self._mirror_metrics(report)
        return report

    def _mirror_metrics(self, report: FaultReport) -> None:
        registry = self._metrics
        link_gauge = registry.gauge(
            "fault_link_frames_lost",
            help="frames destroyed on a faulted link, by cause",
        )
        for name, stats in report.links.items():
            link_gauge.set(stats["blackholed"], link=name, cause="blackhole")
            link_gauge.set(stats["fault_lost"], link=name, cause="loss")
            link_gauge.set(
                stats["fault_corrupted"], link=name, cause="corrupt"
            )
        if report.frer:
            frer_gauge = registry.gauge(
                "frer_duplicates_eliminated",
                help="FRER duplicates eliminated per listener",
            )
            rogue_gauge = registry.gauge(
                "frer_rogue_frames",
                help="FRER rogue (out-of-window) frames per listener",
            )
            for listener, stats in report.frer.items():
                frer_gauge.set(stats["eliminated"], listener=listener)
                rogue_gauge.set(stats["rogue"], listener=listener)
        if report.gptp is not None:
            registry.gauge(
                "gptp_elections",
                help="grandmaster elections during the run",
            ).set(report.gptp["elections"])
            latencies = report.gptp["failover_latencies_ns"]
            if latencies:
                registry.gauge(
                    "gptp_failover_latency_ns",
                    help="detection+election latency of the last healed "
                         "grandmaster failure",
                ).set(latencies[-1])
