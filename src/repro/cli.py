"""Command-line interface: ``python -m repro <command>``.

Five commands wrap the library's main workflows:

``report``
    Print the paper's Table III (and optionally Table I) from the published
    parameter sets.
``size``
    Apply the Section III.C guidelines: topology + flow features in,
    derived SwitchConfig out (JSON to stdout or a file).
``emit-rtl``
    Synthesize a configuration (preset name or JSON file) and write the
    parameterized Verilog bundle.
``simulate``
    Run a declarative scenario file (see
    :class:`repro.network.scenario.ScenarioSpec`) and print/emit the
    result summary.  ``--metrics`` attaches a
    :class:`~repro.obs.metrics.MetricsRegistry` and writes its snapshot;
    ``--chrome-trace`` records a trace and exports Chrome trace-event JSON
    (open in Perfetto / ``chrome://tracing``); ``--profile`` prints a
    wall-clock profile of simulation work.
``metrics``
    Pretty-print a metrics snapshot produced by ``simulate --metrics`` (or
    a summary JSON embedding one).
``headroom``
    Run a scenario with occupancy probes armed and print the
    observed-vs-provisioned resource report: per-structure utilization,
    time-weighted occupancy, wasted BRAM and the cheapest sufficient
    configuration under the sizing margin policy (see
    :mod:`repro.obs.headroom`).  ``--json``/``--csv``/``--prom`` export
    the report for tooling.  ``simulate --headroom`` attaches the same
    probes to an ordinary simulation run.
``slo``
    Run a scenario under its SLO policy (the spec's ``"slo"`` stanza, plus
    every flow-definition deadline) and print per-flow pass/fail verdicts.
    Exit code 0 = all monitored flows pass, 1 = violations, 2 = nothing
    monitored.
``sched``
    Plan a scenario's TS flows with one scheduling backend (or all of
    them with ``--compare``) without simulating: admission, per-slot
    peak, the derived queue depth and total BRAM per backend, plus
    optimality/infeasibility proofs from the ``exact`` backend.
``sweep``
    Expand a declarative sweep document (see
    :class:`repro.campaign.SweepSpec`) into concrete scenarios and run
    them across a process pool, streaming per-run JSONL rows and writing
    an aggregate summary with a BRAM-vs-QoS Pareto frontier.  Every sweep
    also writes a deterministic run *ledger* (``ledger.jsonl``) and a
    wall-clock ``telemetry.json`` with straggler flags; ``--status-file``
    streams live heartbeats, ``--flight-dir`` arms a flight recorder that
    dumps the last kernel events of any failed run, ``--event-budget``
    adds a deterministic per-run kill switch, and ``--status`` renders
    the progress of an existing (possibly still running) sweep.
``tail``
    Render the live progress + ETA view of a sweep's ``--status-file``
    (optionally following it like ``tail -f``).
``bench check``
    Re-measure the tracked benchmark workloads and compare them against
    the committed baselines (``BENCH_kernel.json`` / ``BENCH_obs.json``
    / ``BENCH_sched.json``) with noise-aware thresholds; exit 1 on
    regression.  This is the CI regression gate.
``faults``
    Run a scenario that declares a ``"faults"`` stanza (see
    :mod:`repro.faults`) and print the recovery summary: the executed
    fault timeline, per-link frame destruction, FRER elimination
    counters, gPTP failover latency, the drops-by-reason table, and the
    SLO verdicts.  Exit code 0 = survived (SLO passed, or zero TS loss
    when nothing is monitored), 1 = the faults caused violations, 2 =
    the scenario declares no faults.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.analysis.export import result_summary
from repro.analysis.report import render_table1, render_table3
from repro.core.builder import TSNBuilder
from repro.core.config import SwitchConfig
from repro.core.errors import TsnBuilderError
from repro.core.optimizer import optimize
from repro.core.presets import (
    bcm53154_config,
    linear_config,
    ring_config,
    star_config,
    table1_case1,
    table1_case2,
)
from repro.core.sizing import derive_config
from repro.core.units import us
from repro.network.scenario import ScenarioSpec
from repro.network.topology import (
    linear_topology,
    ring_topology,
    star_topology,
)
from repro.traffic.flows import FlowSet
from repro.traffic.iec60802 import production_cell_flows

__all__ = ["main", "build_parser"]

_PRESETS = {
    "commercial": bcm53154_config,
    "star": star_config,
    "linear": linear_config,
    "ring": ring_config,
}

_TOPOLOGIES = {
    "ring": ring_topology,
    "linear": linear_topology,
    "star": star_topology,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TSN-Builder reproduction (DAC 2020) command line",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="print the paper's resource tables"
    )
    report.add_argument("--table1", action="store_true",
                        help="also print the motivation table")

    size = commands.add_parser(
        "size", help="derive a switch configuration from application features"
    )
    size.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                      default="ring")
    size.add_argument("--switches", type=int, default=6,
                      help="switch count (ring/linear)")
    size.add_argument("--flows", type=int, default=1024)
    size.add_argument("--period-us", type=float, default=10_000.0)
    size.add_argument("--size-bytes", type=int, default=64)
    size.add_argument("--slot-us", type=float, default=62.5)
    size.add_argument("--gate-mechanism", choices=["cqf", "qbv"],
                      default="cqf")
    size.add_argument("--optimize", action="store_true",
                      help="search slot sizes for the cheapest "
                           "deadline-feasible configuration instead of "
                           "applying the guidelines at --slot-us")
    size.add_argument("--deadline-us", type=float, default=None,
                      help="tightest flow deadline for --optimize")
    size.add_argument("--aggregate", action="store_true",
                      help="with --optimize: aggregate forwarding entries "
                           "per destination")
    size.add_argument("--output", type=Path, default=None,
                      help="write the config JSON here instead of stdout")

    emit = commands.add_parser(
        "emit-rtl", help="generate the parameterized Verilog bundle"
    )
    source = emit.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", choices=sorted(_PRESETS))
    source.add_argument("--config", type=Path,
                        help="SwitchConfig JSON file (e.g. from `size`)")
    emit.add_argument("--outdir", type=Path, required=True)

    simulate = commands.add_parser(
        "simulate", help="run a declarative scenario file"
    )
    simulate.add_argument("scenario", type=Path)
    simulate.add_argument("--summary-json", type=Path, default=None,
                          help="also write the summary as JSON")
    simulate.add_argument("--check", action="store_true",
                          help="pre-flight the configuration against the "
                               "scenario and stop (no simulation)")
    simulate.add_argument("--metrics", type=Path, default=None,
                          help="attach a metrics registry and write its "
                               "snapshot JSON here")
    simulate.add_argument("--chrome-trace", type=Path, default=None,
                          help="record gate/queue/tx/drop traces and write "
                               "Chrome trace-event JSON here (open in "
                               "Perfetto or chrome://tracing)")
    simulate.add_argument("--jsonl-trace", type=Path, default=None,
                          help="also write the raw trace records as JSONL")
    simulate.add_argument("--profile", action="store_true",
                          help="profile wall-clock time per simulation "
                               "component and print the table to stderr")
    simulate.add_argument("--flow-spans", action="store_true",
                          help="record per-frame hop events; journeys show "
                               "as async flow tracks in --chrome-trace and "
                               "a frame-accounting summary on stderr")
    simulate.add_argument("--timeseries", type=Path, default=None,
                          help="sample the metrics registry periodically "
                               "and write the series as CSV here (implies "
                               "a registry even without --metrics)")
    simulate.add_argument("--timeseries-interval-us", type=float,
                          default=1000.0,
                          help="sampling interval for --timeseries "
                               "(default: 1000us)")
    simulate.add_argument("--prom", type=Path, default=None,
                          help="write the final registry state in "
                               "Prometheus text exposition format (implies "
                               "a registry even without --metrics)")
    simulate.add_argument("--flight", type=Path, default=None,
                          help="arm a flight recorder and write its "
                               "post-mortem dump (last kernel events + "
                               "fault firings) here after the run")
    simulate.add_argument("--drops", action="store_true",
                          help="print the per-switch drops-by-reason and "
                               "per-port occupancy tables to stderr")
    simulate.add_argument("--headroom", action="store_true",
                          help="attach occupancy probes and print the "
                               "observed-vs-provisioned resource headroom "
                               "report to stderr (also embedded in the "
                               "summary JSON)")
    simulate.add_argument("--shards", type=int, default=None,
                          help="partition the run across N worker "
                               "processes with conservative-lookahead "
                               "synchronization (byte-identical results "
                               "for any N; see docs/sharding.md)")
    simulate.add_argument("--no-strict", action="store_true",
                          help="skip strict scenario validation (unknown "
                               "keys pass through to the testbed)")

    metrics = commands.add_parser(
        "metrics",
        help="pretty-print a metrics snapshot (from simulate --metrics)",
    )
    metrics.add_argument("snapshot", type=Path,
                         help="metrics snapshot JSON, or a summary JSON "
                              "embedding one under 'metrics'")
    metrics.add_argument("--json", action="store_true",
                         help="re-emit the snapshot as JSON instead of "
                              "tables (e.g. to extract the embedded "
                              "snapshot from a summary)")

    headroom = commands.add_parser(
        "headroom",
        help="run a scenario with occupancy probes and report "
             "observed-vs-provisioned resource headroom",
    )
    headroom.add_argument("scenario", type=Path)
    headroom.add_argument("--json", action="store_true",
                          help="emit the report as JSON instead of tables")
    headroom.add_argument("--csv", type=Path, default=None,
                          help="also write the per-structure rows as CSV")
    headroom.add_argument("--prom", type=Path, default=None,
                          help="also write the headroom gauges in "
                               "Prometheus text exposition format")
    headroom.add_argument("--margin", type=float, default=1.5,
                          help="queue-depth margin for the cheapest "
                               "sufficient config (default: 1.5, the "
                               "sizing guideline)")
    headroom.add_argument("--no-strict", action="store_true",
                          help="skip strict scenario validation (unknown "
                               "keys pass through to the testbed)")

    slo = commands.add_parser(
        "slo",
        help="run a scenario under its SLO policy and print verdicts",
    )
    slo.add_argument("scenario", type=Path)
    slo.add_argument("--json", action="store_true",
                     help="emit the report as JSON instead of tables")
    slo.add_argument("--violations", type=int, default=20,
                     help="individual violations to list (default: 20)")

    faults = commands.add_parser(
        "faults",
        help="run a faulted scenario and print the recovery summary",
    )
    faults.add_argument("scenario", type=Path,
                        help="scenario file with a 'faults' stanza")
    faults.add_argument("--json", action="store_true",
                        help="emit the fault report (and SLO report) as "
                             "JSON instead of tables")
    faults.add_argument("--no-strict", action="store_true",
                        help="skip strict scenario validation (unknown "
                             "keys pass through to the testbed)")

    sched = commands.add_parser(
        "sched",
        help="plan a scenario's TS flows with a scheduling backend "
             "(no simulation) and report the admission/queue-depth/BRAM "
             "outcome",
    )
    sched.add_argument("scenario", type=Path)
    sched.add_argument("--backend", default=None,
                       help="override the scenario's sched.backend "
                            "(greedy, exact, anneal, unplanned)")
    sched.add_argument("--compare", action="store_true",
                       help="run every registered backend and tabulate "
                            "the greedy-vs-optimal gaps")
    sched.add_argument("--json", action="store_true",
                       help="emit the plan summaries as JSON")
    sched.add_argument("--no-strict", action="store_true",
                       help="skip strict scenario validation (unknown "
                            "keys pass through to the testbed)")

    sweep = commands.add_parser(
        "sweep",
        help="run a declarative scenario sweep across a process pool",
    )
    sweep.add_argument("spec", type=Path,
                       help="sweep document: base scenario + grid/list "
                            "overrides (+ seeds)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = run inline; default: 1)")
    sweep.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-run wall-clock budget in seconds")
    sweep.add_argument("--retries", type=int, default=0,
                       help="re-execute a failed/timed-out run up to this "
                            "many times (default: 0)")
    sweep.add_argument("--out", type=Path, default=Path("sweep_out"),
                       help="output directory for runs.jsonl + summary.json "
                            "(default: sweep_out)")
    sweep.add_argument("--list", action="store_true", dest="list_runs",
                       help="print the expanded run table and exit "
                            "(no execution)")
    sweep.add_argument("--no-strict", action="store_true",
                       help="skip strict document validation (unknown keys "
                            "pass through)")
    sweep.add_argument("--event-budget", type=int, default=None, metavar="N",
                       help="deterministic per-run kill switch: abort a run "
                            "(status 'timeout') after N kernel events -- "
                            "trips at the same simulation point on every "
                            "host and worker count")
    sweep.add_argument("--status-file", type=Path, default=None,
                       help="stream live heartbeat records (JSONL) here; "
                            "render with `repro tail`")
    sweep.add_argument("--flight-dir", type=Path, default=None,
                       help="arm a flight recorder in every worker and dump "
                            "the last kernel events of failed runs here")
    sweep.add_argument("--heartbeat-interval-us", type=float, default=None,
                       metavar="US",
                       help="simulation-time spacing of worker heartbeats "
                            "(default: duration/8)")
    sweep.add_argument("--no-ledger", action="store_true",
                       help="skip writing the run ledger "
                            "(<out>/ledger.jsonl)")
    sweep.add_argument("--status", action="store_true",
                       help="render the progress of the sweep in --out "
                            "(from its status file) and exit, no execution")

    tail = commands.add_parser(
        "tail",
        help="render live progress + ETA from a sweep status file",
    )
    tail.add_argument("status_file", type=Path,
                      help="a sweep's --status-file (or an --out directory "
                           "containing status.jsonl)")
    tail.add_argument("--follow", action="store_true",
                      help="keep re-rendering until the sweep ends")
    tail.add_argument("--interval", type=float, default=2.0, metavar="S",
                      help="refresh interval for --follow (default: 2s)")

    bench = commands.add_parser(
        "bench",
        help="tracked-benchmark utilities (regression gating)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_check = bench_sub.add_parser(
        "check",
        help="re-measure tracked workloads and compare against the "
             "committed baselines; exit 1 on regression",
    )
    bench_check.add_argument("--suite",
                             choices=["kernel", "obs", "sched", "shard",
                                      "all"],
                             default="all",
                             help="which baseline(s) to gate (default: all)")
    bench_check.add_argument("--smoke", action="store_true",
                             help="small workloads for CI (compared against "
                                  "the smoke_reference baseline section)")
    bench_check.add_argument("--kernel-baseline", type=Path,
                             default=Path("BENCH_kernel.json"),
                             help="kernel baseline file "
                                  "(default: BENCH_kernel.json)")
    bench_check.add_argument("--obs-baseline", type=Path,
                             default=Path("BENCH_obs.json"),
                             help="obs-overhead baseline file "
                                  "(default: BENCH_obs.json)")
    bench_check.add_argument("--sched-baseline", type=Path,
                             default=Path("BENCH_sched.json"),
                             help="scheduling-backend baseline file "
                                  "(default: BENCH_sched.json)")
    bench_check.add_argument("--shard-baseline", type=Path,
                             default=Path("BENCH_shard.json"),
                             help="shard-scaling baseline file "
                                  "(default: BENCH_shard.json)")
    bench_check.add_argument("--tolerance", type=float, default=None,
                             help="override the regression tolerance "
                                  "fraction (default: suite-specific)")

    return parser


# ------------------------------------------------------------------ commands


def _cmd_report(args: argparse.Namespace) -> int:
    baseline = bcm53154_config().resource_report("Commercial (4 ports)")
    customized = [
        star_config().resource_report("Star (3 ports)"),
        linear_config().resource_report("Linear (2 ports)"),
        ring_config().resource_report("Ring (1 port)"),
    ]
    print(render_table3(baseline, customized))
    if args.table1:
        print()
        print(render_table1(
            table1_case1().resource_report("Case 1"),
            table1_case2().resource_report("Case 2"),
        ))
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    builder = _TOPOLOGIES[args.topology]
    if args.topology == "star":
        topology = builder()
    else:
        topology = builder(switch_count=args.switches)
    talkers = [u.host for u in topology.uplinks]
    flows = production_cell_flows(
        talkers,
        topology.attachments[0].host,
        flow_count=args.flows,
        period_ns=us(args.period_us),
        size_bytes=args.size_bytes,
    )
    if args.optimize:
        if args.deadline_us is not None:
            flows = FlowSet(
                [
                    flow.with_updates(deadline_ns=us(args.deadline_us))
                    for flow in flows
                ]
            )
        search = optimize(
            topology,
            flows,
            aggregate_switch_entries=args.aggregate,
            name=f"optimized-{args.topology}",
        )
        config = search.best.config
        note = (
            f"# optimized: slot {search.best.slot_ns / 1000:g}us, "
            f"L_max {search.best.worst_latency_ns / 1000:g}us, "
            f"{config.total_bram_kb:g}Kb BRAM"
        )
    else:
        result = derive_config(
            topology,
            flows,
            us(args.slot_us),
            name=f"sized-{args.topology}",
            gate_mechanism=args.gate_mechanism,
        )
        config = result.config
        note = (
            f"# total {config.total_bram_kb:g}Kb BRAM; ITP needs queue "
            f"depth {result.required_queue_depth}, configured "
            f"{config.queue_depth} "
            f"(+{result.depth_margin_frames} frames margin)"
        )
    payload = config.to_json()
    if args.output:
        args.output.write_text(payload)
        print(f"wrote {args.output}")
    else:
        print(payload)
    print(note, file=sys.stderr)
    return 0


def _cmd_emit_rtl(args: argparse.Namespace) -> int:
    if args.preset:
        config = _PRESETS[args.preset]()
    else:
        config = SwitchConfig.from_json(args.config.read_text())
    builder = TSNBuilder(platform="rtl")
    builder.customize(config)
    model = builder.synthesize()
    files = model.emit_verilog(args.outdir)
    for path in files:
        print(path)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = ScenarioSpec.from_file(args.scenario, strict=not args.no_strict)
    if args.check:
        from repro.core.validation import Severity, check_deployment

        topology = spec.build_topology()
        flows = spec.build_flows()
        config = spec.build_config(topology, flows)
        violations = check_deployment(
            config, topology, flows, spec.slot_ns,
            gate_mechanism=spec.gate_mechanism,
            aggregate_routes=bool(spec.extras.get("aggregate_routes")),
        )
        for violation in violations:
            print(violation)
        errors = [v for v in violations
                  if v.severity is Severity.ERROR]
        print(f"# {len(errors)} error(s), "
              f"{len(violations) - len(errors)} warning(s)",
              file=sys.stderr)
        return 1 if errors else 0
    if args.shards is not None:
        return _simulate_sharded(args, spec)
    from repro.obs.flowspans import FlowSpanRecorder, flow_stats
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profiler import WallClockProfiler
    from repro.sim.trace import Tracer

    needs_registry = args.metrics or args.timeseries or args.prom
    registry = MetricsRegistry() if needs_registry else None
    tracer = (
        Tracer(enabled={"gate", "queue", "tx", "drop"})
        if args.chrome_trace or args.jsonl_trace
        else None
    )
    profiler = WallClockProfiler() if args.profile else None
    spans = FlowSpanRecorder() if args.flow_spans else None
    headroom = None
    if args.headroom:
        from repro.obs.headroom import HeadroomRecorder

        headroom = HeadroomRecorder()
    testbed = spec.build_testbed(
        metrics=registry, tracer=tracer, profiler=profiler, spans=spans,
        headroom=headroom,
    )
    sampler = None
    if args.timeseries:
        from repro.core.units import us
        from repro.obs.timeseries import TimeSeriesSampler

        sampler = TimeSeriesSampler(
            registry, testbed.sim, interval_ns=us(args.timeseries_interval_us)
        )
        sampler.start()
    recorder = None
    if args.flight:
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder()
        testbed.sim.flight = recorder
    result = testbed.run(duration_ns=spec.duration_ns)
    summary = result_summary(result)
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.summary_json:
        args.summary_json.write_text(
            json.dumps(summary, indent=2, sort_keys=True)
        )
    if args.metrics:
        args.metrics.write_text(registry.to_json())
        print(f"# metrics snapshot: {args.metrics}", file=sys.stderr)
    if args.chrome_trace:
        from repro.obs.chrome_trace import write_chrome_trace

        assert tracer is not None
        write_chrome_trace(tracer.records, args.chrome_trace,
                           span_recorder=spans)
        print(f"# chrome trace ({len(tracer.records)} records): "
              f"{args.chrome_trace}", file=sys.stderr)
    if args.jsonl_trace:
        from repro.obs.chrome_trace import trace_to_jsonl

        assert tracer is not None
        trace_to_jsonl(tracer.records, args.jsonl_trace)
        print(f"# jsonl trace: {args.jsonl_trace}", file=sys.stderr)
    if spans is not None:
        stats = flow_stats(spans.journeys(), result.expected_by_flow)
        lost = sum(s.lost for s in stats.values())
        dup = sum(s.duplicates for s in stats.values())
        print(f"# flow spans: {len(spans)} events, "
              f"{sum(s.frames for s in stats.values())} journeys, "
              f"{lost} lost, {dup} duplicate", file=sys.stderr)
        if spans.dropped_events:
            print(f"# flow spans: {spans.dropped_events} events beyond the "
                  f"recorder cap were not recorded", file=sys.stderr)
    if sampler is not None:
        args.timeseries.write_text(sampler.to_csv())
        print(f"# time series ({sampler.samples_taken} samples, "
              f"{len(sampler.rings)} series): {args.timeseries}",
              file=sys.stderr)
    if args.headroom:
        from repro.analysis.report import render_headroom

        report = result.headroom_report()
        print(render_headroom(report), file=sys.stderr)
        if registry is not None:
            report.publish(registry)
    if args.prom:
        from repro.obs.timeseries import prometheus_exposition

        args.prom.write_text(prometheus_exposition(registry))
        print(f"# prometheus exposition: {args.prom}", file=sys.stderr)
    if recorder is not None:
        recorder.dump_to(
            args.flight,
            context={
                "scenario": spec.name,
                "seed": spec.seed,
                "status": "ok",
                "sim_now_ns": testbed.sim.now,
                "sim_stats": testbed.sim.stats.as_dict(),
            },
        )
        print(f"# flight recorder ({len(recorder)} events, "
              f"{len(recorder.notes())} notes): {args.flight}",
              file=sys.stderr)
    if args.drops:
        print(result.drop_report(), file=sys.stderr)
        print(result.port_report(), file=sys.stderr)
    if profiler is not None:
        print(profiler.render(), file=sys.stderr)
    ts = summary["classes"]["TS"]
    if ts.get("received") and ts["loss"] == 0.0:
        print("# TS: zero loss", file=sys.stderr)
    return 0


def _simulate_sharded(args: argparse.Namespace, spec) -> int:
    """``simulate --shards N``: the partitioned-run path.

    The shard coordinator merges only the deterministic observables;
    observers that need one kernel (metrics, profiles, spans, probes,
    flight recorder) are rejected up front instead of silently ignored.
    """
    incompatible = [
        ("--metrics", args.metrics),
        ("--chrome-trace", args.chrome_trace),
        ("--profile", args.profile),
        ("--flow-spans", args.flow_spans),
        ("--timeseries", args.timeseries),
        ("--prom", args.prom),
        ("--flight", args.flight),
        ("--headroom", args.headroom),
    ]
    offending = [flag for flag, value in incompatible if value]
    if offending:
        print(f"error: --shards cannot be combined with "
              f"{', '.join(offending)} (single-kernel observers; "
              f"see docs/sharding.md)", file=sys.stderr)
        return 2
    from repro.sim.shard import run_sharded

    result = run_sharded(
        spec, shards=args.shards, trace=bool(args.jsonl_trace)
    )
    summary = result_summary(result)
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.summary_json:
        args.summary_json.write_text(
            json.dumps(summary, indent=2, sort_keys=True)
        )
    if args.jsonl_trace:
        from repro.obs.chrome_trace import trace_to_jsonl

        trace_to_jsonl(result.tracer.records, args.jsonl_trace)
        print(f"# jsonl trace: {args.jsonl_trace}", file=sys.stderr)
    if args.drops:
        print(result.drop_report(), file=sys.stderr)
        print(result.port_report(), file=sys.stderr)
    timing = result.shard_timing
    print(f"# shards: {timing['shards']}, epochs: {timing['epochs']}, "
          f"wall {timing['wall_s']:.3f}s, "
          f"critical path {timing['critical_path_s']:.3f}s",
          file=sys.stderr)
    ts = summary["classes"]["TS"]
    if ts.get("received") and ts["loss"] == 0.0:
        print("# TS: zero loss", file=sys.stderr)
    return 0


def _cmd_headroom(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_headroom, render_port_occupancy
    from repro.obs.headroom import HeadroomRecorder

    spec = ScenarioSpec.from_file(args.scenario, strict=not args.no_strict)
    recorder = HeadroomRecorder()
    result = spec.run(headroom=recorder)
    report = result.headroom_report(queue_depth_margin=args.margin)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_headroom(report))
        print()
        print(render_port_occupancy(report))
    if args.csv:
        args.csv.write_text(report.to_csv())
        print(f"# headroom csv: {args.csv}", file=sys.stderr)
    if args.prom:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.timeseries import prometheus_exposition

        registry = MetricsRegistry()
        report.publish(registry)
        args.prom.write_text(prometheus_exposition(registry))
        print(f"# prometheus exposition: {args.prom}", file=sys.stderr)
    wasted = report.wasted_kb
    print(f"# provisioned {report.provisioned_kb:g}Kb, sufficient "
          f"{report.sufficient_kb:g}Kb, cheapest single config "
          f"{report.cheapest_kb:g}Kb", file=sys.stderr)
    if wasted < 0:
        print(f"# under-provisioned by {-wasted:g}Kb against the "
              f"{args.margin:g}x depth-margin policy", file=sys.stderr)
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_slo
    from repro.obs.slo import SloPolicy

    spec = ScenarioSpec.from_file(args.scenario)
    # An absent stanza still monitors flow-definition deadlines.
    policy = spec.build_slo_policy() or SloPolicy()
    result = spec.run(slo_policy=policy)
    report = result.slo
    assert report is not None
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_slo(report, max_violations=args.violations))
    if not report.monitored:
        print("# no flow has any SLO bound; nothing was checked",
              file=sys.stderr)
        return 2
    return 0 if report.passed else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_faults, render_slo
    from repro.obs.slo import SloPolicy

    spec = ScenarioSpec.from_file(args.scenario, strict=not args.no_strict)
    if spec.faults is None:
        print(f"error: {args.scenario} declares no 'faults' stanza",
              file=sys.stderr)
        return 2
    # Faults without verdicts are just noise: always attach SLO
    # monitoring so the run says whether the network survived.
    policy = spec.build_slo_policy() or SloPolicy()
    result = spec.run(slo_policy=policy)
    fault_report = result.faults
    slo_report = result.slo
    assert fault_report is not None and slo_report is not None
    if args.json:
        payload = {"faults": fault_report.as_dict(),
                   "slo": slo_report.as_dict()}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_faults(fault_report))
        print()
        print(result.drop_report())
        print()
        print(render_slo(slo_report))
    if slo_report.monitored:
        return 0 if slo_report.passed else 1
    # No SLO bound anywhere: fall back to the raw TS loss signal.
    from repro.traffic.flows import TrafficClass

    ts_loss = result.loss_rate(TrafficClass.TS)
    print("# no flow has any SLO bound; verdict is TS loss only",
          file=sys.stderr)
    return 0 if ts_loss == 0.0 else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_metrics

    data = json.loads(args.snapshot.read_text())
    # Accept either a bare registry snapshot or a summary embedding one.
    snapshot = data.get("metrics", data) if isinstance(data, dict) else data
    if not isinstance(snapshot, dict) or not all(
        isinstance(value, dict) and "kind" in value
        for value in snapshot.values()
    ):
        print(f"error: {args.snapshot} does not contain a metrics snapshot",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_metrics(snapshot))
    return 0


def _cmd_sched(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.sched import SchedPolicy, available_backends, plan_flows

    spec = ScenarioSpec.from_file(args.scenario, strict=not args.no_strict)
    policy = spec.build_sched_policy() or SchedPolicy(
        backend="greedy" if spec.use_itp else "unplanned"
    )
    if args.backend:
        policy = dataclasses.replace(policy, backend=args.backend)
    topology = spec.build_topology()
    flows = spec.build_flows()
    backends = (
        sorted(available_backends()) if args.compare else [policy.backend]
    )

    rows = []
    for backend in backends:
        per_backend = dataclasses.replace(policy, backend=backend)
        plan = plan_flows(list(flows), spec.slot_ns, policy=per_backend)
        entry = plan.summary()
        entry["shaper"] = per_backend.shaper
        try:
            sizing = derive_config(
                topology, flows, spec.slot_ns,
                name=f"{spec.name}-{backend}",
                gate_mechanism=spec.gate_mechanism,
                sched=per_backend,
            )
            entry["configured_queue_depth"] = sizing.config.queue_depth
            entry["bram_kb"] = sizing.config.total_bram_kb
        except TsnBuilderError as exc:
            entry["sizing_error"] = str(exc)
        rows.append(entry)

    if args.json:
        payload = {
            "scenario": spec.name,
            "slot_us": spec.slot_us,
            "shaper": policy.shaper,
            "plans": rows,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        header = (f"{'backend':<10} {'status':<11} {'admitted':>8} "
                  f"{'peak':>5} {'depth':>6} {'BRAM Kb':>8}")
        print(header)
        print("-" * len(header))
        for entry in rows:
            admitted = f"{entry['admitted']}/{entry['demanded']}"
            depth = entry.get("configured_queue_depth", "-")
            bram = entry.get("bram_kb", "-")
            bram_s = f"{bram:g}" if isinstance(bram, (int, float)) else bram
            print(f"{entry['backend']:<10} {entry['status']:<11} "
                  f"{admitted:>8} {entry['peak_frames_per_slot']:>5} "
                  f"{depth!s:>6} {bram_s:>8}")
    for entry in rows:
        if entry["status"] == "optimal":
            print(f"# {entry['backend']}: proved peak "
                  f"{entry['peak_frames_per_slot']} frames/slot optimal "
                  f"(lower bound "
                  f"{entry.get('peak_lower_bound', '?')}, "
                  f"{entry['nodes_explored']} nodes)", file=sys.stderr)
        elif entry["status"] == "infeasible":
            print(f"# {entry['backend']}: proved infeasible at slot "
                  f"{spec.slot_us:g}us", file=sys.stderr)
    if not args.compare and rows[0]["status"] in ("infeasible", "unknown"):
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.campaign import Campaign, SweepSpec

    if args.status:
        from repro.obs.campaign import read_status, render_status

        status_path = args.status_file or args.out / "status.jsonl"
        if not status_path.exists():
            print(f"error: no status file at {status_path} (run the sweep "
                  f"with --status-file)", file=sys.stderr)
            return 2
        print(render_status(read_status(status_path)))
        return 0

    strict = not args.no_strict
    spec = SweepSpec.from_file(args.spec, strict=strict)
    heartbeat_interval_ns = (
        int(args.heartbeat_interval_us * 1000)
        if args.heartbeat_interval_us else None
    )
    campaign = Campaign(
        spec,
        workers=args.workers,
        timeout_s=args.timeout,
        retries=args.retries,
        event_budget=args.event_budget,
        status_file=args.status_file,
        ledger=None if args.no_ledger else args.out / "ledger.jsonl",
        flight_dir=args.flight_dir,
        heartbeat_interval_ns=heartbeat_interval_ns,
    )
    runs = campaign.plan(strict=strict)
    if args.list_runs:
        for run in runs:
            params = json.dumps(run.overrides, sort_keys=True)
            print(f"{run.run_id}  seed={run.seed}  {params}")
        print(f"# {len(runs)} run(s)", file=sys.stderr)
        return 0

    args.out.mkdir(parents=True, exist_ok=True)
    jsonl_path = args.out / "runs.jsonl"
    summary_path = args.out / "summary.json"
    telemetry_path = args.out / "telemetry.json"

    def progress(row, finished, total):
        status = row["status"]
        note = "" if status == "ok" else f" ({row.get('error', status)})"
        print(f"# [{finished}/{total}] {row['run_id']} {status}{note}",
              file=sys.stderr)

    summary = campaign.run(jsonl=jsonl_path, progress=progress,
                           strict=strict)
    summary_path.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    from repro.obs.campaign import telemetry_summary

    telemetry_path.write_text(
        json.dumps(telemetry_summary(spec.name, campaign.telemetry),
                   indent=2, sort_keys=True) + "\n"
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    print(f"# rows: {jsonl_path}", file=sys.stderr)
    print(f"# summary: {summary_path}", file=sys.stderr)
    if not args.no_ledger:
        print(f"# ledger: {args.out / 'ledger.jsonl'}", file=sys.stderr)
    print(f"# telemetry: {telemetry_path}", file=sys.stderr)
    for flag in campaign.stragglers:
        print(f"# straggler: {flag['run_id']} attempt {flag['attempt']} "
              f"({', '.join(flag['reasons'])}, {flag['wall_s']:.3f}s)",
              file=sys.stderr)
    failed = summary["runs"] - summary["status"].get("ok", 0)
    if failed:
        print(f"# {failed} run(s) did not finish ok", file=sys.stderr)
        return 1
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.campaign import read_status, render_status

    path = args.status_file
    if path.is_dir():
        path = path / "status.jsonl"
    if not path.exists():
        print(f"error: no status file at {path}", file=sys.stderr)
        return 2
    while True:
        records = read_status(path)
        print(render_status(records))
        if not args.follow:
            return 0
        if any(r.get("hb") == "sweep_end" for r in records):
            return 0
        _time.sleep(args.interval)
        print()


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.check import run_check

    return run_check(
        suite=args.suite,
        smoke=args.smoke,
        kernel_baseline=args.kernel_baseline,
        obs_baseline=args.obs_baseline,
        sched_baseline=args.sched_baseline,
        shard_baseline=args.shard_baseline,
        tolerance=args.tolerance,
    )


_HANDLERS = {
    "report": _cmd_report,
    "size": _cmd_size,
    "emit-rtl": _cmd_emit_rtl,
    "simulate": _cmd_simulate,
    "metrics": _cmd_metrics,
    "headroom": _cmd_headroom,
    "slo": _cmd_slo,
    "sched": _cmd_sched,
    "sweep": _cmd_sweep,
    "faults": _cmd_faults,
    "tail": _cmd_tail,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except TsnBuilderError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
