"""The scenario-facing scheduling policy: the ``"sched"`` stanza.

A scenario selects its scheduling behaviour declaratively::

    "sched": {
      "backend": "exact",            // greedy | exact | anneal | unplanned
      "shaper": "csqf",              // cqf | csqf | multi_cqf
      "objective": "min_peak",       // min_peak | max_admission
      "utilization_limit": 0.5,      // TS share of a slot's wire time
      "slot2_us": 125.0,             // multi_cqf: the long-slot system
      "options": {"node_limit": 100000}   // backend-specific
    }

:class:`SchedPolicy` is the parsed form, :func:`validate_sched_dict` the
strict validator behind :class:`~repro.core.errors.SpecValidationError`
(path-prefixed problems, nearest-key suggestions, per-backend option
checks), and :func:`plan_flows` the one entry point that turns a flow set
plus a policy into a plan -- including the Multi-CQF case, where flows
partition onto per-system problems (a flow joins the long-slot system
when its period is a multiple of ``slot2``) and the per-system plans
aggregate into a :class:`~repro.sched.problem.MultiSchedulePlan`.

Both the testbed and the sizing guidelines call :func:`plan_flows`, so a
scenario's simulated queues and its derived BRAM figures always come from
the same schedule.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.errors import SchedulingError
from repro.core.units import GIGABIT, us
from repro.cqf.schedule import CqfSchedule
from repro.traffic.flows import FlowSpec, TrafficClass

from .base import Scheduler, available_backends, backend_options, \
    make_scheduler
from .problem import MultiSchedulePlan, OBJECTIVES, SchedulePlan, \
    SchedulingProblem

__all__ = [
    "SHAPERS",
    "SchedPolicy",
    "validate_sched_dict",
    "plan_flows",
    "partition_for_multi_cqf",
]

#: First-class shaper modes.  ``cqf`` is the paper's 2-queue cyclic
#: forwarding; ``csqf`` the cycle-tagged 3-queue variant (one extra slot
#: of tolerance per hop); ``multi_cqf`` runs two CQF systems per port
#: with distinct slot lengths.
SHAPERS: Tuple[str, ...] = ("cqf", "csqf", "multi_cqf")

_KNOWN_KEYS = (
    "backend", "shaper", "objective", "utilization_limit", "slot2_us",
    "options",
)

#: Expected types for the options of the built-in backends.
_OPTION_TYPES: Dict[str, Dict[str, tuple]] = {
    "exact": {"node_limit": (int,)},
    "anneal": {
        "seed": (int,),
        "iterations": (int,),
        "t0": (int, float),
        "t_min": (int, float),
    },
}


@dataclass(frozen=True)
class SchedPolicy:
    """Parsed ``"sched"`` stanza with defaults matching historic behaviour."""

    backend: str = "greedy"
    shaper: str = "cqf"
    objective: str = "min_peak"
    utilization_limit: float = 0.5
    slot2_us: Optional[float] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.shaper not in SHAPERS:
            raise SchedulingError(
                f"unknown shaper {self.shaper!r}; expected one of {SHAPERS}"
            )
        if self.objective not in OBJECTIVES:
            raise SchedulingError(
                f"unknown objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}"
            )
        if not 0 < self.utilization_limit <= 1:
            raise SchedulingError(
                f"utilization_limit must be in (0, 1], "
                f"got {self.utilization_limit}"
            )

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]]) -> "SchedPolicy":
        if data is None:
            return cls()
        problems = validate_sched_dict(data)
        if problems:
            from repro.core.errors import SpecValidationError

            raise SpecValidationError("sched stanza", problems)
        return cls(
            backend=data.get("backend", "greedy"),
            shaper=data.get("shaper", "cqf"),
            objective=data.get("objective", "min_peak"),
            utilization_limit=data.get("utilization_limit", 0.5),
            slot2_us=data.get("slot2_us"),
            options=dict(data.get("options", {})),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "backend": self.backend,
            "shaper": self.shaper,
            "objective": self.objective,
            "utilization_limit": self.utilization_limit,
        }
        if self.slot2_us is not None:
            data["slot2_us"] = self.slot2_us
        if self.options:
            data["options"] = dict(self.options)
        return data

    def make_scheduler(self) -> Scheduler:
        return make_scheduler(self.backend, **self.options)

    def slot2_ns(self, slot_ns: int) -> int:
        """The long-slot system's slot size (default: twice the base slot)."""
        slot2 = us(self.slot2_us) if self.slot2_us is not None \
            else 2 * slot_ns
        if slot2 <= 0 or slot2 % slot_ns:
            raise SchedulingError(
                f"multi_cqf slot2 ({slot2}ns) must be a positive multiple "
                f"of the base slot ({slot_ns}ns)"
            )
        return slot2


def _suggest(key: str, candidates) -> str:
    matches = difflib.get_close_matches(str(key), sorted(candidates), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def validate_sched_dict(data: Any) -> List[str]:
    """Every problem the stanza has, as ``"sched.path: message"`` strings."""
    if not isinstance(data, Mapping):
        return [f"sched: expected an object, got {type(data).__name__}"]
    problems: List[str] = []
    for key in sorted(set(data) - set(_KNOWN_KEYS)):
        problems.append(
            f"sched.{key}: unknown key{_suggest(key, _KNOWN_KEYS)}"
        )
    backend = data.get("backend", "greedy")
    if not isinstance(backend, str):
        problems.append(
            f"sched.backend: expected a string, got {backend!r}"
        )
    elif backend not in available_backends():
        problems.append(
            f"sched.backend: unknown backend {backend!r}"
            f"{_suggest(backend, available_backends())}; "
            f"available: {list(available_backends())}"
        )
    shaper = data.get("shaper", "cqf")
    if shaper not in SHAPERS:
        problems.append(
            f"sched.shaper: expected one of {list(SHAPERS)}, got {shaper!r}"
            f"{_suggest(str(shaper), SHAPERS)}"
        )
    objective = data.get("objective", "min_peak")
    if objective not in OBJECTIVES:
        problems.append(
            f"sched.objective: expected one of {list(OBJECTIVES)}, "
            f"got {objective!r}{_suggest(str(objective), OBJECTIVES)}"
        )
    limit = data.get("utilization_limit", 0.5)
    if isinstance(limit, bool) or not isinstance(limit, (int, float)):
        problems.append(
            f"sched.utilization_limit: expected a number, got {limit!r}"
        )
    elif not 0 < limit <= 1:
        problems.append(
            f"sched.utilization_limit: must be in (0, 1], got {limit!r}"
        )
    if "slot2_us" in data:
        slot2 = data["slot2_us"]
        if isinstance(slot2, bool) or not isinstance(slot2, (int, float)) \
                or slot2 <= 0:
            problems.append(
                f"sched.slot2_us: expected a positive number, got {slot2!r}"
            )
        if shaper != "multi_cqf":
            problems.append(
                "sched.slot2_us: only valid with shaper 'multi_cqf'"
            )
    options = data.get("options", {})
    if not isinstance(options, Mapping):
        problems.append(
            f"sched.options: expected an object, "
            f"got {type(options).__name__}"
        )
    elif isinstance(backend, str) and backend in available_backends():
        allowed = backend_options(backend)
        for key in sorted(set(options) - set(allowed)):
            accepted = (
                f"; {backend!r} accepts {sorted(allowed)}" if allowed
                else f"; {backend!r} takes no options"
            )
            problems.append(
                f"sched.options.{key}: unknown option for backend "
                f"{backend!r}{_suggest(key, allowed)}{accepted}"
            )
        for key, kinds in _OPTION_TYPES.get(backend, {}).items():
            if key in options:
                value = options[key]
                if isinstance(value, bool) or not isinstance(value, kinds):
                    label = "an integer" if kinds == (int,) else "a number"
                    problems.append(
                        f"sched.options.{key}: expected {label}, "
                        f"got {value!r}"
                    )
    return problems


# --------------------------------------------------------------- planning


def partition_for_multi_cqf(
    ts_flows: Sequence[FlowSpec], slot_ns: int, slot2_ns: int
) -> Tuple[List[FlowSpec], List[FlowSpec]]:
    """Split TS flows onto the two CQF systems of a Multi-CQF port.

    A flow joins the long-slot system when its period is a multiple of
    ``slot2_ns`` -- slower flows tolerate the coarser slotting and buy the
    fast system headroom; everything else stays on the base slot.
    """
    base: List[FlowSpec] = []
    long_slot: List[FlowSpec] = []
    for flow in ts_flows:
        if flow.period_ns is not None and flow.period_ns % slot2_ns == 0:
            long_slot.append(flow)
        else:
            base.append(flow)
    return base, long_slot


def plan_flows(
    flows: Sequence[FlowSpec],
    slot_ns: int,
    rate_bps: int = GIGABIT,
    policy: Optional[SchedPolicy] = None,
) -> Union[SchedulePlan, MultiSchedulePlan]:
    """Plan the TS subset of *flows* under *policy* (never raises on
    infeasibility -- check/raise via the returned plan)."""
    policy = policy or SchedPolicy()
    scheduler = policy.make_scheduler()
    ts = [f for f in flows if f.traffic_class is TrafficClass.TS]
    if not ts:
        raise SchedulingError("cannot plan a flow set with no TS flows")
    if policy.shaper != "multi_cqf":
        schedule = CqfSchedule.for_flows(
            [f.period_ns for f in ts], slot_ns
        )
        problem = SchedulingProblem.from_flows(
            ts, schedule, rate_bps,
            slot_utilization_limit=policy.utilization_limit,
            objective=policy.objective,
        )
        return scheduler.solve(problem)
    slot2_ns = policy.slot2_ns(slot_ns)
    systems = []
    for system_slot, members in zip(
        (slot_ns, slot2_ns),
        partition_for_multi_cqf(ts, slot_ns, slot2_ns),
    ):
        if members:
            schedule = CqfSchedule.for_flows(
                [f.period_ns for f in members], system_slot
            )
        else:  # keep system indices aligned with the queue groups
            schedule = CqfSchedule(system_slot, system_slot)
        problem = SchedulingProblem.from_flows(
            members, schedule, rate_bps,
            slot_utilization_limit=policy.utilization_limit,
            objective=policy.objective,
        )
        systems.append(scheduler.solve(problem))
    return MultiSchedulePlan(tuple(systems))
