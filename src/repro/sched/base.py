"""The pluggable-backend surface: protocol, registry, factory.

Every flow-scheduling backend is an object with a ``name`` and one method,
``solve(problem) -> SchedulePlan``.  Call sites never construct backends
directly; they go through :func:`make_scheduler`, which resolves a backend
*name* against the registry and validates backend-specific options against
the backend's constructor signature -- an unknown name or option fails
with a nearest-match suggestion instead of a bare ``TypeError``.

The registry ships with four backends:

=============  ========================================================
``greedy``     the paper's ITP planner (default; fast, unproven)
``exact``      branch-and-bound; ``optimal``/``infeasible`` are proofs
``anneal``     seeded simulated annealing for large instances
``unplanned``  period-start injection, the no-planning ablation baseline
=============  ========================================================

Third-party backends register with :func:`register_backend` and become
valid scenario ``"sched": {"backend": ...}`` values automatically.
"""

from __future__ import annotations

import difflib
import inspect
from typing import Callable, Dict, Tuple

try:  # Protocol is typing-only sugar; keep 3.7 compat cheap.
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from repro.core.errors import SchedulingError

from .anneal import AnnealScheduler
from .exact import ExactScheduler
from .greedy import GreedyScheduler, UnplannedScheduler
from .problem import SchedulePlan, SchedulingProblem

__all__ = [
    "Scheduler",
    "available_backends",
    "backend_options",
    "make_scheduler",
    "register_backend",
]


class Scheduler(Protocol):
    """What every scheduling backend must provide."""

    name: str

    def solve(self, problem: SchedulingProblem) -> SchedulePlan:
        """Assign injection offsets; never raises on infeasibility --
        report it through the plan's ``status``/``rejected``/``reason``."""
        ...


_REGISTRY: Dict[str, Callable[..., Scheduler]] = {}


def register_backend(name: str, factory: Callable[..., Scheduler]) -> None:
    """Add (or replace) a backend under *name* in the factory registry."""
    if not name or not isinstance(name, str):
        raise SchedulingError(f"backend name must be a string, got {name!r}")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def backend_options(name: str) -> Tuple[str, ...]:
    """The option names *name*'s factory accepts (for validation/docs)."""
    factory = _REGISTRY.get(name)
    if factory is None:
        return ()
    params = inspect.signature(factory).parameters
    return tuple(p for p in params if p != "self")


def make_scheduler(name: str, **options) -> Scheduler:
    """Resolve *name* to a backend instance, validating *options*.

    >>> make_scheduler("exact", node_limit=50_000)  # doctest: +ELLIPSIS
    <repro.sched.exact.ExactScheduler object at ...>
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        matches = difflib.get_close_matches(
            str(name), available_backends(), n=1
        )
        hint = f" (did you mean {matches[0]!r}?)" if matches else ""
        raise SchedulingError(
            f"unknown scheduling backend {name!r}{hint}; "
            f"available: {list(available_backends())}"
        )
    allowed = set(backend_options(name))
    unknown = sorted(set(options) - allowed)
    if unknown:
        problems = []
        for key in unknown:
            matches = difflib.get_close_matches(key, sorted(allowed), n=1)
            hint = f" (did you mean {matches[0]!r}?)" if matches else ""
            problems.append(f"{key!r}{hint}")
        raise SchedulingError(
            f"backend {name!r} does not accept option(s) "
            f"{', '.join(problems)}; accepted: {sorted(allowed)}"
        )
    return factory(**options)


register_backend("greedy", GreedyScheduler)
register_backend("exact", ExactScheduler)
register_backend("anneal", AnnealScheduler)
register_backend("unplanned", UnplannedScheduler)
