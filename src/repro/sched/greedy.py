"""The greedy ITP backend -- the paper's planner behind one new interface.

This is the load-balancing core that used to live inside
:class:`repro.cqf.itp.ItpPlanner` (Yan et al., *Injection Time Planning*,
INFOCOM 2020), lifted onto the :class:`~repro.sched.problem.
SchedulingProblem` model: flows are processed in decreasing
bandwidth-demand order and each picks the feasible injection slot that
minimizes the worst per-slot load it touches, ``(frames, bytes)``
lexicographically, ties to the lowest offset.

The placement arithmetic, ordering and tie-breaks are verbatim from the
old planner, so greedy plans -- offsets, phases, per-slot loads -- are
byte-identical to historical ``ItpPlanner`` output (locked by tests).

Under ``objective="min_peak"`` a flow with no budget-feasible offset makes
the plan ``infeasible`` (greedy cannot *prove* infeasibility -- run the
exact backend for a proof); under ``"max_admission"`` the flow is rejected
and planning continues.

Also home to the ``unplanned`` backend: the no-ITP strawman where every
flow injects at its period start, so same-period flows pile into slot 0
and the required depth approaches the flow count -- the ablation baseline
showing what injection planning buys.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .problem import FlowDemand, SchedulePlan, SchedulingProblem

__all__ = ["GreedyScheduler", "UnplannedScheduler"]


class GreedyScheduler:
    """Greedy slot load balancing (the default backend)."""

    name = "greedy"

    def solve(self, problem: SchedulingProblem) -> SchedulePlan:
        slot_count = problem.slot_count
        slot_frames = [0] * slot_count
        slot_bytes = [0] * slot_count
        offsets: Dict[int, int] = {}
        rejected: List[int] = []
        reason: Optional[str] = None
        # Largest bandwidth demand first: the classic greedy-balance order.
        ordered = sorted(
            problem.demands, key=lambda d: (-d.rate_bps, d.flow_id)
        )
        for demand in ordered:
            offset = _best_offset(
                demand, slot_frames, slot_bytes, slot_count,
                problem.budget_bytes,
            )
            if offset is None:
                rejected.append(demand.flow_id)
                if reason is None:
                    reason = (
                        f"flow {demand.flow_id}: no injection slot keeps "
                        f"per-slot TS load within {problem.budget_bytes}B "
                        f"-- reduce flows or widen slots"
                    )
                if problem.objective == "min_peak":
                    break
                continue
            for s in range(offset, slot_count, demand.period_slots):
                slot_frames[s] += 1
                slot_bytes[s] += demand.occupancy_bytes
            offsets[demand.flow_id] = offset
        if rejected and problem.objective == "min_peak":
            status = "infeasible"
        else:
            status = "feasible"
        return SchedulePlan(
            problem=problem,
            offsets=offsets,
            backend=self.name,
            status=status,
            rejected=tuple(rejected),
            reason=reason,
        )


def _best_offset(
    demand: FlowDemand,
    slot_frames: List[int],
    slot_bytes: List[int],
    slot_count: int,
    budget_bytes: int,
) -> Optional[int]:
    """The offset minimizing the worst touched ``(frames, bytes)`` load."""
    best_offset: Optional[int] = None
    best_key: Optional[Tuple[int, int]] = None
    period = demand.period_slots
    for offset in range(period):
        # Strided slices keep the max scans in C; the generator version
        # dominated plan-time profiles at campaign flow counts.
        total_bytes = max(slot_bytes[offset::period])
        if total_bytes + demand.occupancy_bytes > budget_bytes:
            continue
        worst_frames = max(slot_frames[offset::period])
        key = (worst_frames, total_bytes)
        if best_key is None or key < best_key:
            best_key = key
            best_offset = offset
    return best_offset


class UnplannedScheduler:
    """Every flow injects at its period start (the no-ITP strawman).

    Ignores the byte budget on purpose: the baseline models applications
    injecting whenever they please, and its blown-out per-slot load is
    exactly the measurement the ablation wants.
    """

    name = "unplanned"

    def solve(self, problem: SchedulingProblem) -> SchedulePlan:
        return SchedulePlan(
            problem=problem,
            offsets={d.flow_id: 0 for d in problem.demands},
            backend=self.name,
            status="feasible",
        )
