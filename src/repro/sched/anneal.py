"""Seeded local-search (simulated annealing) backend.

For instances too large for a branch-and-bound proof, ``anneal`` starts
from the greedy plan and walks the offset space with Metropolis-accepted
single-flow moves:

* *reassign*: move one admitted flow to a different byte-feasible offset;
* *admit*: try to place one currently rejected flow (``max_admission``
  runs start from a greedy plan that may reject flows).

The energy strongly orders what matters: rejections first, then the peak
frames-per-slot (the queue-depth requirement), then the sum of squared
per-slot frame counts -- the smoothing term that creates a gradient
between plans with equal peaks, which is what lets the peak eventually
drop.

Determinism is part of the contract: all randomness comes from one
``random.Random(seed)``, the iteration count is fixed, and no wall-clock
or OS entropy is consulted -- the same problem and options produce a
byte-identical plan on any host, at any campaign worker count.

If the final plan's peak meets the pigeonhole lower bound with nothing
rejected, the status upgrades itself to ``"optimal"`` -- a bound match is
a proof no search was needed for.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.core.errors import SchedulingError

from .greedy import GreedyScheduler
from .problem import FlowDemand, SchedulePlan, SchedulingProblem

__all__ = ["AnnealScheduler", "DEFAULT_ITERATIONS"]

#: Default annealing length; enough for ~hundreds of flows to settle.
DEFAULT_ITERATIONS = 4_000

#: Energy weight making one rejection dominate any peak difference.
_REJECT_WEIGHT = 1 << 40
#: Energy weight making one peak level dominate any smoothing difference.
_PEAK_WEIGHT = 1 << 20


class AnnealScheduler:
    """Simulated annealing from the greedy plan, fully seeded."""

    name = "anneal"

    def __init__(
        self,
        seed: int = 0,
        iterations: int = DEFAULT_ITERATIONS,
        t0: float = 2.0,
        t_min: float = 0.01,
    ):
        if iterations < 0:
            raise SchedulingError(
                f"iterations must be >= 0, got {iterations}"
            )
        if t0 <= 0 or t_min <= 0 or t_min > t0:
            raise SchedulingError(
                f"need 0 < t_min <= t0, got t0={t0}, t_min={t_min}"
            )
        self.seed = seed
        self.iterations = iterations
        self.t0 = t0
        self.t_min = t_min

    def solve(self, problem: SchedulingProblem) -> SchedulePlan:
        state = _State(problem)
        rng = random.Random(self.seed)
        cooling = (
            (self.t_min / self.t0) ** (1.0 / self.iterations)
            if self.iterations
            else 1.0
        )
        temperature = self.t0
        best_energy = state.energy()
        best_offsets = dict(state.offsets)
        current_energy = best_energy
        movable = state.movable_demands()
        for _ in range(self.iterations):
            if not movable:
                break
            delta = state.propose_and_apply(rng)
            if delta is None:
                temperature *= cooling
                continue
            if delta <= 0 or rng.random() < math.exp(
                -delta / (temperature * _PEAK_WEIGHT)
            ):
                current_energy += delta
                if current_energy < best_energy:
                    best_energy = current_energy
                    best_offsets = dict(state.offsets)
            else:
                state.undo()
            temperature *= cooling
        state.restore(best_offsets)
        return state.to_plan(self.name, iterations=self.iterations)


class _State:
    """Mutable slot loads with O(period) move application and undo."""

    def __init__(self, problem: SchedulingProblem):
        self.problem = problem
        self.slot_count = problem.slot_count
        self.budget = problem.budget_bytes
        self.by_id = {d.flow_id: d for d in problem.demands}
        # Start from greedy under max_admission so an over-constrained
        # instance still yields a working (partial) starting point.
        seed_problem = SchedulingProblem(
            schedule=problem.schedule,
            demands=problem.demands,
            budget_bytes=problem.budget_bytes,
            rate_bps=problem.rate_bps,
            objective="max_admission",
        )
        seed = GreedyScheduler().solve(seed_problem)
        self.offsets: Dict[int, int] = dict(seed.offsets)
        self.slot_frames = [0] * self.slot_count
        self.slot_bytes = [0] * self.slot_count
        for fid, offset in self.offsets.items():
            self._add(self.by_id[fid], offset)
        self._undo: Optional[Tuple[int, Optional[int], Optional[int]]] = None

    # ------------------------------------------------------------- energy

    def _add(self, demand: FlowDemand, offset: int) -> None:
        for s in range(offset, self.slot_count, demand.period_slots):
            self.slot_frames[s] += 1
            self.slot_bytes[s] += demand.occupancy_bytes

    def _remove(self, demand: FlowDemand, offset: int) -> None:
        for s in range(offset, self.slot_count, demand.period_slots):
            self.slot_frames[s] -= 1
            self.slot_bytes[s] -= demand.occupancy_bytes

    def energy(self) -> int:
        rejected = len(self.by_id) - len(self.offsets)
        peak = max(self.slot_frames, default=0)
        smooth = sum(f * f for f in self.slot_frames)
        return rejected * _REJECT_WEIGHT + peak * _PEAK_WEIGHT + smooth

    def movable_demands(self) -> List[FlowDemand]:
        """Demands with more than one candidate offset (sorted, stable)."""
        return [
            d for d in sorted(self.by_id.values(), key=lambda d: d.flow_id)
            if d.period_slots > 1 or d.flow_id not in self.offsets
        ]

    def fits(self, demand: FlowDemand, offset: int) -> bool:
        return all(
            self.slot_bytes[s] + demand.occupancy_bytes <= self.budget
            for s in range(offset, self.slot_count, demand.period_slots)
        )

    # -------------------------------------------------------------- moves

    def propose_and_apply(self, rng: random.Random) -> Optional[int]:
        """Apply one random move; return the energy delta (None = no-op)."""
        movable = self.movable_demands()
        demand = movable[rng.randrange(len(movable))]
        old_offset = self.offsets.get(demand.flow_id)
        new_offset = rng.randrange(demand.period_slots)
        if new_offset == old_offset:
            return None
        before = self.energy()
        if old_offset is not None:
            self._remove(demand, old_offset)
        if not self.fits(demand, new_offset):
            if old_offset is not None:
                self._add(demand, old_offset)
            return None
        self._add(demand, new_offset)
        self.offsets[demand.flow_id] = new_offset
        self._undo = (demand.flow_id, old_offset, new_offset)
        return self.energy() - before

    def undo(self) -> None:
        assert self._undo is not None
        flow_id, old_offset, new_offset = self._undo
        demand = self.by_id[flow_id]
        self._remove(demand, new_offset)
        if old_offset is None:
            del self.offsets[flow_id]
        else:
            self._add(demand, old_offset)
            self.offsets[flow_id] = old_offset
        self._undo = None

    def restore(self, offsets: Dict[int, int]) -> None:
        self.slot_frames = [0] * self.slot_count
        self.slot_bytes = [0] * self.slot_count
        self.offsets = dict(offsets)
        for fid, offset in self.offsets.items():
            self._add(self.by_id[fid], offset)

    # ------------------------------------------------------------- result

    def to_plan(self, backend: str, iterations: int) -> SchedulePlan:
        rejected = tuple(
            d.flow_id
            for d in self.problem.demands
            if d.flow_id not in self.offsets
        )
        reason = None
        if rejected and self.problem.objective == "min_peak":
            status = "infeasible"
            reason = (
                f"anneal could not admit flows {list(rejected)} within "
                f"the {self.problem.budget_bytes}B slot budget (not a "
                f"proof -- try the exact backend)"
            )
        else:
            peak = max(self.slot_frames, default=0)
            at_bound = (
                not rejected and peak <= self.problem.peak_lower_bound()
            )
            status = "optimal" if at_bound else "feasible"
        return SchedulePlan(
            problem=self.problem,
            offsets=dict(self.offsets),
            backend=backend,
            status=status,
            rejected=rejected,
            iterations=iterations,
            reason=reason,
        )
