"""Pluggable flow scheduling: one problem model, many backends.

The redesigned scheduling layer behind CQF/CSQF/Multi-CQF injection
planning.  Construct a :class:`SchedulingProblem` (or let
:func:`plan_flows` build it from a flow set and a :class:`SchedPolicy`),
pick a backend through :func:`make_scheduler`, and consume the returned
:class:`SchedulePlan`::

    from repro.sched import SchedulingProblem, make_scheduler

    problem = SchedulingProblem.from_flows(flows, schedule)
    plan = make_scheduler("exact").solve(problem)
    plan.required_queue_depth        # guideline-4 input
    plan.status                      # "optimal" is a proof here

See :mod:`repro.sched.base` for the backend matrix and
:mod:`repro.sched.policy` for the scenario ``"sched"`` stanza.
"""

from .base import (
    Scheduler,
    available_backends,
    backend_options,
    make_scheduler,
    register_backend,
)
from .policy import (
    SHAPERS,
    SchedPolicy,
    partition_for_multi_cqf,
    plan_flows,
    validate_sched_dict,
)
from .problem import (
    OBJECTIVES,
    FlowDemand,
    MultiSchedulePlan,
    SchedulePlan,
    SchedulingProblem,
)

__all__ = [
    "FlowDemand",
    "MultiSchedulePlan",
    "OBJECTIVES",
    "SHAPERS",
    "SchedPolicy",
    "SchedulePlan",
    "Scheduler",
    "SchedulingProblem",
    "available_backends",
    "backend_options",
    "make_scheduler",
    "partition_for_multi_cqf",
    "plan_flows",
    "register_backend",
    "validate_sched_dict",
]
