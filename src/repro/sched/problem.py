"""The shared scheduling-problem model every backend consumes.

The paper's queue-sizing guideline 4 ("the queue should hold all the
packets that arrive at the queue in the same slot") turns flow scheduling
into a combinatorial question: pick each TS flow's injection slot so the
worst per-slot load -- frames *and* wire bytes -- stays as low as
possible.  :class:`SchedulingProblem` captures exactly that question,
independent of how it is answered:

* the :class:`~repro.cqf.schedule.CqfSchedule` (slot size, cycle, slot
  count),
* one :class:`FlowDemand` per TS flow (period in slots, wire-byte
  occupancy, the rate used for ordering and phase stagger),
* the per-slot byte budget (slot capacity x utilization limit -- CQF must
  drain every gathered frame within the next slot), and
* the *objective*: ``"min_peak"`` admits every flow or reports the
  instance infeasible; ``"max_admission"`` lexicographically maximizes the
  admitted flow count, then minimizes the peak.

Backends return a :class:`SchedulePlan`: offsets, rejected flows, a
status (``"optimal"`` and ``"infeasible"`` are *proofs* only when the
exact backend emits them), and search-effort counters.  The plan converts
losslessly to the legacy :class:`~repro.cqf.itp.ItpPlan` -- including the
phase-stagger arithmetic -- so everything downstream of the old planner
(testbed sources, Qbv synthesis, sizing) keeps working unchanged.

Multi-CQF scenarios solve one problem per CQF system and aggregate the
per-system plans in a :class:`MultiSchedulePlan` with the same reporting
surface (the *worst* system decides the required queue depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import SchedulingError
from repro.core.units import GIGABIT, serialization_ns, wire_bytes
from repro.cqf.schedule import CqfSchedule
from repro.traffic.flows import FlowSpec, TrafficClass

__all__ = [
    "FlowDemand",
    "SchedulingProblem",
    "SchedulePlan",
    "MultiSchedulePlan",
    "OBJECTIVES",
]

#: Recognized problem objectives.
OBJECTIVES: Tuple[str, ...] = ("min_peak", "max_admission")

#: Plan statuses.  ``optimal``/``infeasible`` are proofs only from the
#: exact backend; heuristic backends use them in the weaker sense "this
#: backend admitted everything it tried" / "could not admit every flow".
STATUSES: Tuple[str, ...] = ("optimal", "feasible", "infeasible", "unknown")


@dataclass(frozen=True)
class FlowDemand:
    """One TS flow's load, as the slot planner sees it."""

    flow_id: int
    period_slots: int      # the flow's period expressed in slots
    occupancy_bytes: int   # wire bytes one frame occupies in its slot
    rate_bps: int          # bandwidth demand (greedy order, phase stagger)
    size_bytes: int        # L2 payload size (diagnostics)

    @classmethod
    def from_flow(cls, flow: FlowSpec, slot_ns: int) -> "FlowDemand":
        if flow.period_ns is None:
            raise SchedulingError(
                f"flow {flow.flow_id}: TS flow without a period"
            )
        if flow.period_ns % slot_ns:
            raise SchedulingError(
                f"flow {flow.flow_id}: period {flow.period_ns}ns is not a "
                f"multiple of the slot {slot_ns}ns"
            )
        return cls(
            flow_id=flow.flow_id,
            period_slots=flow.period_ns // slot_ns,
            occupancy_bytes=wire_bytes(flow.size_bytes),
            rate_bps=flow.effective_rate_bps,
            size_bytes=flow.size_bytes,
        )


@dataclass(frozen=True)
class SchedulingProblem:
    """One slot-assignment instance: demands, slotting, budget, objective."""

    schedule: CqfSchedule
    demands: Tuple[FlowDemand, ...]
    budget_bytes: int
    rate_bps: int = GIGABIT
    objective: str = "min_peak"

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise SchedulingError(
                f"unknown objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}"
            )
        slot_count = self.schedule.slot_count
        for demand in self.demands:
            if slot_count % demand.period_slots:
                raise SchedulingError(
                    f"flow {demand.flow_id}: period of "
                    f"{demand.period_slots} slots does not divide the "
                    f"{slot_count}-slot cycle"
                )

    @classmethod
    def from_flows(
        cls,
        flows: Sequence[FlowSpec],
        schedule: CqfSchedule,
        rate_bps: int = GIGABIT,
        slot_utilization_limit: float = 0.5,
        objective: str = "min_peak",
    ) -> "SchedulingProblem":
        """Build the problem for the TS subset of *flows*.

        *slot_utilization_limit* bounds how much of a slot's wire time TS
        frames may fill (CQF must drain every gathered frame within the
        next slot, with headroom for one lower-priority MTU in flight).
        Demand order follows *flows* order -- the phase-stagger order.
        """
        demands = tuple(
            FlowDemand.from_flow(flow, schedule.slot_ns)
            for flow in flows
            if flow.traffic_class is TrafficClass.TS
        )
        budget = int(
            schedule.capacity_bytes(rate_bps) * slot_utilization_limit
        )
        return cls(
            schedule=schedule,
            demands=demands,
            budget_bytes=budget,
            rate_bps=rate_bps,
            objective=objective,
        )

    # ------------------------------------------------------------- helpers

    @property
    def slot_count(self) -> int:
        return self.schedule.slot_count

    def demand_of(self, flow_id: int) -> FlowDemand:
        for demand in self.demands:
            if demand.flow_id == flow_id:
                return demand
        raise KeyError(flow_id)

    def frame_slots(self, demand: FlowDemand) -> int:
        """Slots one cycle of *demand* occupies (frames per cycle)."""
        return self.slot_count // demand.period_slots

    def peak_lower_bound(self) -> int:
        """Pigeonhole bound on the best achievable frames-per-slot peak."""
        if not self.demands:
            return 0
        total = sum(self.frame_slots(d) for d in self.demands)
        return max(1, -(-total // self.slot_count))


@dataclass(frozen=True)
class SchedulePlan:
    """One backend's answer: offsets, rejections, status, effort."""

    problem: SchedulingProblem
    offsets: Mapping[int, int]          # flow_id -> injection slot offset
    backend: str
    status: str
    rejected: Tuple[int, ...] = ()
    nodes_explored: int = 0
    iterations: int = 0
    reason: Optional[str] = None        # human-readable infeasibility cause
    _phases: Dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _slot_frames: List[int] = field(
        default_factory=list, repr=False, compare=False
    )
    _slot_bytes: List[int] = field(
        default_factory=list, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise SchedulingError(
                f"unknown plan status {self.status!r}; "
                f"expected one of {STATUSES}"
            )
        self._recompute_load()
        self._assign_phases()

    # ----------------------------------------------------------- derivation

    def _recompute_load(self) -> None:
        slot_count = self.problem.slot_count
        frames = [0] * slot_count
        load = [0] * slot_count
        for demand in self.problem.demands:
            offset = self.offsets.get(demand.flow_id)
            if offset is None:
                continue
            for s in range(offset, slot_count, demand.period_slots):
                frames[s] += 1
                load[s] += demand.occupancy_bytes
        self._slot_frames.extend(frames)
        self._slot_bytes.extend(load)

    def _assign_phases(self) -> None:
        """Stagger same-slot flows by one wire time each (ITP-identical).

        Iterates demands in problem order -- the original flow-set order --
        so the phases match :class:`~repro.cqf.itp.ItpPlanner` byte for
        byte on any plan the greedy backend produces.
        """
        next_phase: Dict[int, int] = {}
        slot_count = self.problem.slot_count
        for demand in self.problem.demands:
            offset = self.offsets.get(demand.flow_id)
            if offset is None:
                continue
            slot = offset % slot_count
            phase = next_phase.get(slot, 0)
            next_phase[slot] = phase + serialization_ns(
                demand.occupancy_bytes, self.problem.rate_bps
            )
            self._phases[demand.flow_id] = phase

    # ------------------------------------------------------------- queries

    @property
    def slot_frames(self) -> List[int]:
        return list(self._slot_frames)

    @property
    def slot_bytes(self) -> List[int]:
        return list(self._slot_bytes)

    @property
    def max_frames_per_slot(self) -> int:
        return max(self._slot_frames, default=0)

    @property
    def max_bytes_per_slot(self) -> int:
        return max(self._slot_bytes, default=0)

    @property
    def required_queue_depth(self) -> int:
        """Guideline 4: worst-case gathering-queue occupancy."""
        return self.max_frames_per_slot

    def load_balance_ratio(self) -> float:
        """max/mean per-slot frames; 1.0 is a perfectly level plan."""
        if not self._slot_frames or self.max_frames_per_slot == 0:
            return 1.0
        mean = sum(self._slot_frames) / len(self._slot_frames)
        return self.max_frames_per_slot / mean if mean else float("inf")

    @property
    def admitted(self) -> Tuple[int, ...]:
        return tuple(sorted(self.offsets))

    @property
    def admitted_count(self) -> int:
        return len(self.offsets)

    @property
    def demand_count(self) -> int:
        return len(self.problem.demands)

    @property
    def admission_rate(self) -> float:
        """Admitted fraction of the demanded flows; 1.0 when none demanded."""
        if not self.problem.demands:
            return 1.0
        return self.admitted_count / len(self.problem.demands)

    def phase_ns(self, flow_id: int) -> int:
        return self._phases[flow_id]

    def slot_ns_of(self, flow_id: int) -> int:
        """Slot size governing *flow_id* (uniform in a single-system plan)."""
        if flow_id not in self.offsets:
            raise KeyError(flow_id)
        return self.problem.schedule.slot_ns

    def system_of(self, flow_id: int) -> int:
        if flow_id not in self.offsets:
            raise KeyError(flow_id)
        return 0

    def injection_offset_ns(self, flow_id: int) -> int:
        """First-injection time: planned slot start plus stagger phase."""
        return (
            self.offsets[flow_id] * self.problem.schedule.slot_ns
            + self._phases[flow_id]
        )

    def raise_if_infeasible(self) -> None:
        """Raise :class:`SchedulingError` unless the plan is usable."""
        if self.status in ("infeasible", "unknown"):
            raise SchedulingError(
                self.reason
                or f"backend {self.backend!r} produced no feasible plan "
                   f"(status {self.status!r})"
            )

    # ---------------------------------------------------------- conversion

    def to_itp_plan(self) -> "ItpPlan":
        """The legacy representation consumed downstream of the planner."""
        from repro.cqf.itp import ItpAssignment, ItpPlan

        plan = ItpPlan(
            self.problem.schedule,
            slot_frames=list(self._slot_frames),
            slot_bytes=list(self._slot_bytes),
        )
        for demand in self.problem.demands:
            offset = self.offsets.get(demand.flow_id)
            if offset is None:
                continue
            plan.assignments[demand.flow_id] = ItpAssignment(
                demand.flow_id,
                offset,
                phase_ns=self._phases[demand.flow_id],
                period_slots=demand.period_slots,
            )
        return plan

    def summary(self) -> Dict[str, object]:
        """JSON-ready digest (CLI, sweep rows, export)."""
        return {
            "backend": self.backend,
            "status": self.status,
            "objective": self.problem.objective,
            "demanded": len(self.problem.demands),
            "admitted": self.admitted_count,
            "rejected": len(self.rejected),
            "admission_rate": round(self.admission_rate, 6),
            "peak_frames_per_slot": self.max_frames_per_slot,
            "peak_bytes_per_slot": self.max_bytes_per_slot,
            "required_queue_depth": self.required_queue_depth,
            "peak_lower_bound": self.problem.peak_lower_bound(),
            "nodes_explored": self.nodes_explored,
            "iterations": self.iterations,
        }


_STATUS_RANK = {"optimal": 0, "feasible": 1, "unknown": 2, "infeasible": 3}


@dataclass(frozen=True)
class MultiSchedulePlan:
    """Per-system plans of a Multi-CQF port, with one reporting surface.

    ``systems[i]`` is the :class:`SchedulePlan` of CQF system *i*; each
    system runs its own slot size, so flow lookups dispatch on which
    system admitted the flow.  The required queue depth is the worst
    system's (every queue group is provisioned to the same depth).
    """

    systems: Tuple[SchedulePlan, ...]

    def __post_init__(self) -> None:
        if not self.systems:
            raise SchedulingError("MultiSchedulePlan needs >= 1 system")

    # ------------------------------------------------------------- queries

    @property
    def backend(self) -> str:
        return self.systems[0].backend

    @property
    def status(self) -> str:
        return max(
            (plan.status for plan in self.systems),
            key=lambda s: _STATUS_RANK[s],
        )

    @property
    def rejected(self) -> Tuple[int, ...]:
        return tuple(
            fid for plan in self.systems for fid in plan.rejected
        )

    @property
    def admitted_count(self) -> int:
        return sum(plan.admitted_count for plan in self.systems)

    @property
    def demand_count(self) -> int:
        return sum(len(plan.problem.demands) for plan in self.systems)

    @property
    def admission_rate(self) -> float:
        demanded = self.demand_count
        if not demanded:
            return 1.0
        return self.admitted_count / demanded

    @property
    def required_queue_depth(self) -> int:
        return max(plan.required_queue_depth for plan in self.systems)

    @property
    def max_frames_per_slot(self) -> int:
        return self.required_queue_depth

    @property
    def nodes_explored(self) -> int:
        return sum(plan.nodes_explored for plan in self.systems)

    @property
    def iterations(self) -> int:
        return sum(plan.iterations for plan in self.systems)

    def _plan_of(self, flow_id: int) -> Tuple[int, SchedulePlan]:
        for index, plan in enumerate(self.systems):
            if flow_id in plan.offsets:
                return index, plan
        raise KeyError(flow_id)

    def system_of(self, flow_id: int) -> int:
        return self._plan_of(flow_id)[0]

    def slot_ns_of(self, flow_id: int) -> int:
        return self._plan_of(flow_id)[1].problem.schedule.slot_ns

    def phase_ns(self, flow_id: int) -> int:
        return self._plan_of(flow_id)[1].phase_ns(flow_id)

    def injection_offset_ns(self, flow_id: int) -> int:
        return self._plan_of(flow_id)[1].injection_offset_ns(flow_id)

    @property
    def offsets(self) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for plan in self.systems:
            merged.update(plan.offsets)
        return merged

    def raise_if_infeasible(self) -> None:
        for plan in self.systems:
            plan.raise_if_infeasible()

    def summary(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "status": self.status,
            "objective": self.systems[0].problem.objective,
            "demanded": self.demand_count,
            "admitted": self.admitted_count,
            "rejected": len(self.rejected),
            "admission_rate": round(self.admission_rate, 6),
            "peak_frames_per_slot": self.max_frames_per_slot,
            "required_queue_depth": self.required_queue_depth,
            "nodes_explored": self.nodes_explored,
            "iterations": self.iterations,
            "systems": [plan.summary() for plan in self.systems],
        }
