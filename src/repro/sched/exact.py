"""Exact branch-and-bound backend: provably optimal slot assignment.

Answers the question the greedy planner cannot: *how far from optimal is
the sizing?*  The search explores injection-offset assignments depth-first
in a fully deterministic order, so results are byte-identical across runs,
hosts and worker counts:

* flows expand in ``(period_slots, -occupancy_bytes, flow_id)`` order --
  most-constrained first (a small period touches the most slots);
* each flow's candidate offsets are tried ascending; under
  ``max_admission`` an explicit *reject* branch is tried last;
* the incumbent is seeded with the greedy plan, so the search only ever
  has to find strictly better assignments (or prove none exist).

Pruning: per-slot byte-budget feasibility, incumbent bounding on the
``(rejections, peak)`` objective, the pigeonhole lower bound
``ceil(total frame-slots / slot_count)`` (search ends immediately once the
incumbent meets it), and symmetry breaking over identical flows (equal
period and occupancy): their offsets are forced non-decreasing, removing
factorially many mirrored subtrees.

A complete search makes the result a *proof*: status ``"optimal"`` (with
the incumbent plan) or ``"infeasible"``.  Hitting ``node_limit`` degrades
the status to ``"feasible"`` (best incumbent, unproven) or ``"unknown"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import SchedulingError

from .greedy import GreedyScheduler
from .problem import FlowDemand, SchedulePlan, SchedulingProblem

__all__ = ["ExactScheduler", "DEFAULT_NODE_LIMIT"]

#: Expansion budget before the search gives up on a proof.  Small CQF
#: instances (<= a few dozen flows) complete in far fewer nodes; the limit
#: exists so a pathological sweep point degrades to "feasible" instead of
#: hanging a campaign worker.
DEFAULT_NODE_LIMIT = 200_000

#: Sentinel "worse than any real objective" incumbent.
_NO_INCUMBENT = (1 << 60, 1 << 60)


class ExactScheduler:
    """Deterministic branch-and-bound over injection offsets."""

    name = "exact"

    def __init__(self, node_limit: int = DEFAULT_NODE_LIMIT):
        if node_limit < 1:
            raise SchedulingError(
                f"node_limit must be >= 1, got {node_limit}"
            )
        self.node_limit = node_limit

    def solve(self, problem: SchedulingProblem) -> SchedulePlan:
        search = _Search(problem, self.node_limit)
        return search.run(self.name)


class _Search:
    def __init__(self, problem: SchedulingProblem, node_limit: int):
        self.problem = problem
        self.node_limit = node_limit
        self.slot_count = problem.slot_count
        self.budget = problem.budget_bytes
        self.allow_reject = problem.objective == "max_admission"
        # Most-constrained-first expansion order (deterministic).
        self.order: List[FlowDemand] = sorted(
            problem.demands,
            key=lambda d: (d.period_slots, -d.occupancy_bytes, d.flow_id),
        )
        self.peak_lb = problem.peak_lower_bound()
        # The pigeonhole bound assumes every demand is placed, so it is
        # only a sound *pruning* bound when rejection is impossible; under
        # max_admission a plan rejecting a heavy flow can legally end
        # below it.  (Seed early-exit still uses it: a zero-rejection
        # incumbent at the bound beats any other zero-rejection plan.)
        self.prune_lb = 0 if self.allow_reject else self.peak_lb
        self.slot_frames = [0] * self.slot_count
        self.slot_bytes = [0] * self.slot_count
        self.offsets: Dict[int, int] = {}
        self.nodes = 0
        self.truncated = False
        self.best: Tuple[int, int] = _NO_INCUMBENT  # (rejections, peak)
        self.best_offsets: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------ seeding

    def _seed_incumbent(self) -> None:
        greedy = GreedyScheduler().solve(self.problem)
        if greedy.status == "infeasible":
            return
        self.best = (len(greedy.rejected), greedy.max_frames_per_slot)
        self.best_offsets = dict(greedy.offsets)

    # ------------------------------------------------------------- search

    def run(self, backend: str) -> SchedulePlan:
        self._seed_incumbent()
        if not (self.best_offsets is not None
                and self.best == (0, self.peak_lb)):
            # The greedy seed may already meet the pigeonhole bound with
            # zero rejections -- then there is nothing left to prove.
            self._expand(0, 0, 0)
        proven = not self.truncated
        if self.best_offsets is None:
            status = "infeasible" if proven else "unknown"
            reason = (
                "exact search proved the instance infeasible: no offset "
                f"assignment keeps every slot within "
                f"{self.problem.budget_bytes}B"
                if proven
                else f"exact search hit node_limit={self.node_limit} "
                     f"without finding a feasible plan"
            )
            return SchedulePlan(
                problem=self.problem,
                offsets={},
                backend=backend,
                status=status,
                rejected=tuple(
                    d.flow_id for d in self.problem.demands
                ),
                nodes_explored=self.nodes,
                reason=reason,
            )
        rejected = tuple(
            d.flow_id
            for d in self.problem.demands
            if d.flow_id not in self.best_offsets
        )
        if rejected and not self.allow_reject:
            # min_peak with a rejecting incumbent cannot happen (the seed
            # is all-or-nothing and branches never reject).
            raise AssertionError("min_peak incumbent rejected flows")
        return SchedulePlan(
            problem=self.problem,
            offsets=self.best_offsets,
            backend=backend,
            status="optimal" if proven else "feasible",
            rejected=rejected,
            nodes_explored=self.nodes,
        )

    def _expand(self, index: int, peak: int, rejections: int) -> None:
        if self.truncated:
            return
        if index == len(self.order):
            value = (rejections, peak)
            if value < self.best:
                self.best = value
                self.best_offsets = dict(self.offsets)
            return
        # Incumbent bound: every completion has >= current rejections and
        # >= max(current peak, pigeonhole bound).
        bound = (rejections, max(peak, self.prune_lb))
        if bound >= self.best:
            return
        demand = self.order[index]
        min_offset, force_reject = self._symmetry_floor(index)
        if not force_reject:
            for offset in range(min_offset, demand.period_slots):
                self.nodes += 1
                if self.nodes >= self.node_limit:
                    self.truncated = True
                    return
                new_peak = self._try_place(demand, offset, peak)
                if new_peak is None:
                    continue
                if (rejections, max(new_peak, self.prune_lb)) >= self.best:
                    self._unplace(demand, offset)
                    continue
                self._expand(index + 1, new_peak, rejections)
                self._unplace(demand, offset)
                if self.truncated:
                    return
        if self.allow_reject:
            self.nodes += 1
            if self.nodes >= self.node_limit:
                self.truncated = True
                return
            self._expand(index + 1, peak, rejections + 1)

    def _symmetry_floor(self, index: int) -> Tuple[int, bool]:
        """Offset floor (and forced rejection) from the previous twin.

        Identical demands are interchangeable: forcing their offsets
        non-decreasing -- and forcing a twin of a rejected flow to also be
        rejected -- keeps exactly one representative of each symmetric
        assignment class.
        """
        if index == 0:
            return 0, False
        demand = self.order[index]
        prev = self.order[index - 1]
        if (prev.period_slots, prev.occupancy_bytes) != (
            demand.period_slots, demand.occupancy_bytes
        ):
            return 0, False
        prev_offset = self.offsets.get(prev.flow_id)
        if prev_offset is None:
            return 0, True  # twin was rejected: reject this one too
        return prev_offset, False

    def _try_place(
        self, demand: FlowDemand, offset: int, peak: int
    ) -> Optional[int]:
        touched = range(offset, self.slot_count, demand.period_slots)
        for s in touched:
            if self.slot_bytes[s] + demand.occupancy_bytes > self.budget:
                return None
        new_peak = peak
        for s in touched:
            self.slot_frames[s] += 1
            self.slot_bytes[s] += demand.occupancy_bytes
            if self.slot_frames[s] > new_peak:
                new_peak = self.slot_frames[s]
        self.offsets[demand.flow_id] = offset
        return new_peak

    def _unplace(self, demand: FlowDemand, offset: int) -> None:
        del self.offsets[demand.flow_id]
        for s in range(offset, self.slot_count, demand.period_slots):
            self.slot_frames[s] -= 1
            self.slot_bytes[s] -= demand.occupancy_bytes
