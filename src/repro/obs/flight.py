"""Flight recorder: a bounded black box of recent kernel activity.

A campaign run that times out or crashes used to leave *nothing* behind --
``SIGALRM`` unwound the worker and every in-memory trace died with it.  The
:class:`FlightRecorder` fixes that the way avionics do: a fixed-capacity
ring of the most recent kernel events (time + action category) plus a ring
of annotated *notes* (fault firings, lifecycle marks), cheap enough to
leave armed for the whole run and dumped to a post-mortem JSON file only
when something goes wrong.

Design constraints:

* **Bounded**: both rings overwrite their oldest entries, so a runaway run
  records the *end* of its life -- the part a post-mortem needs -- at
  constant memory.
* **Deterministic content**: entries carry simulation time and the action's
  qualified-name category, never wall-clock, so two runs of the same seeded
  scenario (any worker count) dump byte-identical files.  The campaign
  determinism smoke relies on this.
* **Cheap**: the kernel hook is one ``is not None`` test per event when
  detached; when attached, one dict lookup (category cache by code object)
  and one ring append.

The recorder attaches to a kernel by assignment (``sim.flight = recorder``)
-- mirroring how the profiler hooks in -- and the
:class:`~repro.faults.injector.FaultInjector` notes every fault it applies
into whatever recorder the kernel carries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs.timeseries import RingBuffer

__all__ = ["FlightRecorder", "DEFAULT_FLIGHT_CAPACITY"]

#: Events kept in the ring: enough to reconstruct the last few slot cycles
#: of a wedged run without ballooning the dump file.
DEFAULT_FLIGHT_CAPACITY = 256


class FlightRecorder:
    """Ring-buffered record of the most recent kernel events and notes.

    >>> from repro.sim.kernel import Simulator
    >>> sim = Simulator()
    >>> sim.flight = recorder = FlightRecorder(capacity=4)
    >>> sim.post(10, lambda: None)
    >>> sim.run()
    >>> len(recorder.events())
    1
    """

    def __init__(
        self,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        note_capacity: int = 64,
    ) -> None:
        self.capacity = capacity
        self._events = RingBuffer(capacity)
        self._notes = RingBuffer(note_capacity)
        self.dropped_events = 0
        self.dropped_notes = 0
        # categorize() per event would dominate the recording cost; cache
        # by code object like the profiler does (one entry per call site).
        self._categories: Dict[Any, str] = {}

    # ------------------------------------------------------------ recording

    def record(self, time_ns: int, action: Callable[..., Any]) -> None:
        """Kernel hook: note that *action* fired at *time_ns*."""
        func = getattr(action, "__func__", action)
        key = getattr(func, "__code__", None) or type(action)
        category = self._categories.get(key)
        if category is None:
            from repro.obs.profiler import categorize

            category = self._categories[key] = categorize(action)
        events = self._events
        if len(events) == events.capacity:
            self.dropped_events += 1
        events.append((time_ns, category))

    def note(self, kind: str, detail: str, time_ns: int = 0) -> None:
        """Record an annotated marker (fault firing, lifecycle event)."""
        notes = self._notes
        if len(notes) == notes.capacity:
            self.dropped_notes += 1
        notes.append({"time_ns": time_ns, "kind": kind, "detail": detail})

    # -------------------------------------------------------------- queries

    def events(self) -> List[Any]:
        """Recorded (time_ns, category) pairs, oldest first."""
        return self._events.items()

    def notes(self) -> List[Dict[str, Any]]:
        return self._notes.items()

    def __len__(self) -> int:
        return len(self._events)

    # -------------------------------------------------------------- dumping

    def dump(self, context: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The post-mortem document: recent events, notes, drop accounting.

        *context* (run id, status, sim stats, ...) is merged in verbatim;
        callers must keep it wall-clock-free if they rely on the
        byte-identical-dump property.
        """
        doc: Dict[str, Any] = dict(context or {})
        doc.update(
            capacity=self.capacity,
            events=[[t, c] for t, c in self.events()],
            events_dropped=self.dropped_events,
            notes=self.notes(),
            notes_dropped=self.dropped_notes,
        )
        return doc

    def dump_to(
        self, path: Union[str, Path],
        context: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write :meth:`dump` as sorted-key JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.dump(context), indent=2, sort_keys=True) + "\n"
        )
        return target
