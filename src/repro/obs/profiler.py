"""Opt-in wall-clock profiling of simulation work.

The kernel attributes the host-CPU time each event action consumes to a
*category* derived from the action's qualified name (``EgressPort.kick``,
``GateEngine._flip``, ...), so a benchmark PR can say "62% of sim time is
egress arbitration" instead of guessing.

Profiling must cost literally nothing when off: the default
:data:`NULL_PROFILER` is a distinct type the kernel checks with one ``is``
comparison, and **no** ``time.perf_counter_ns`` call happens anywhere on
that path (a unit test poisons the clock to prove it).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["WallClockProfiler", "NullProfiler", "NULL_PROFILER", "categorize"]

#: Nanosecond wall-clock source; injectable for tests.
ClockFn = Callable[[], int]


def categorize(action: Callable[..., Any]) -> str:
    """A stable category for an event action.

    Named functions/methods report their qualified name; closures and
    lambdas are attributed to the enclosing function (``TsnSwitch.receive``
    rather than an anonymous ``<lambda>``), which is where the scheduling
    decision lives.
    """
    func = getattr(action, "__func__", action)  # unwrap bound methods
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        return type(action).__name__
    head, sep, _tail = qualname.partition(".<locals>.")
    return head if sep else qualname


class _Span:
    """Context manager timing one block into a profiler category."""

    __slots__ = ("_profiler", "_category", "_start")

    def __init__(self, profiler: "WallClockProfiler", category: str) -> None:
        self._profiler = profiler
        self._category = category
        self._start = 0

    def __enter__(self) -> "_Span":
        self._start = self._profiler.clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._profiler.record(
            self._category, self._profiler.clock() - self._start
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullProfiler:
    """The do-nothing default: no clock reads, no state."""

    enabled = False

    def span(self, category: str) -> _NullSpan:
        return _NULL_SPAN

    def record(self, category: str, elapsed_ns: int, count: int = 1) -> None:
        return None

    def record_action(self, action: Callable[..., Any], elapsed_ns: int) -> None:
        return None

    def report(self) -> Dict[str, Dict[str, int]]:
        return {}


#: Shared disabled profiler; the kernel compares against this with ``is``.
NULL_PROFILER = NullProfiler()


class WallClockProfiler:
    """Accumulates host wall-clock time per category.

    >>> ticks = iter(range(0, 1000, 100))
    >>> profiler = WallClockProfiler(clock=lambda: next(ticks))
    >>> with profiler.span("work"):
    ...     pass
    >>> profiler.report()["work"]["calls"]
    1
    """

    enabled = True

    def __init__(self, clock: Optional[ClockFn] = None) -> None:
        self.clock: ClockFn = clock or time.perf_counter_ns
        self._categories: Dict[str, List[int]] = {}  # [total_ns, calls, max]
        # categorize() per event action would dominate the profiled cost;
        # cache by code object (lambdas share one code object per site).
        self._action_categories: Dict[Any, str] = {}

    def span(self, category: str) -> _Span:
        return _Span(self, category)

    def record_action(self, action: Callable[..., Any], elapsed_ns: int) -> None:
        """Attribute one event action's wall time (kernel hook)."""
        func = getattr(action, "__func__", action)
        key = getattr(func, "__code__", None) or type(action)
        category = self._action_categories.get(key)
        if category is None:
            category = self._action_categories[key] = categorize(action)
        self.record(category, elapsed_ns)

    def record(self, category: str, elapsed_ns: int, count: int = 1) -> None:
        entry = self._categories.get(category)
        if entry is None:
            entry = self._categories[category] = [0, 0, 0]
        entry[0] += elapsed_ns
        entry[1] += count
        if elapsed_ns > entry[2]:
            entry[2] = elapsed_ns

    # -------------------------------------------------------------- queries

    @property
    def total_ns(self) -> int:
        return sum(entry[0] for entry in self._categories.values())

    def report(self) -> Dict[str, Dict[str, int]]:
        """Per-category totals, hottest first."""
        ordered = sorted(
            self._categories.items(), key=lambda item: -item[1][0]
        )
        return {
            category: {
                "total_ns": total,
                "calls": calls,
                "max_ns": worst,
                "mean_ns": total // calls if calls else 0,
            }
            for category, (total, calls, worst) in ordered
        }

    def render(self) -> str:
        """Human-readable profile table, hottest category first."""
        from repro.analysis.report import render_table

        total = self.total_ns or 1
        rows: List[List[str]] = []
        for category, entry in self.report().items():
            rows.append(
                [
                    category,
                    f"{entry['total_ns'] / 1e6:.2f}",
                    f"{100 * entry['total_ns'] / total:.1f}%",
                    str(entry["calls"]),
                    f"{entry['mean_ns']:d}",
                    f"{entry['max_ns']:d}",
                ]
            )
        return render_table(
            ["category", "total(ms)", "share", "calls", "mean(ns)",
             "max(ns)"],
            rows,
            title="Wall-clock profile",
        )
