"""Campaign-scale observability: run ledger, worker telemetry, stragglers.

PR 1-2 made a *single* run observable; a sweep of hundreds of runs was
still a black box while it executed and an amnesiac afterwards.  This
module is the fleet-telemetry substrate threaded through
:mod:`repro.campaign`:

* **Run ledger** (:class:`LedgerWriter`) -- an append-only JSONL record of
  every run of a sweep: spec hash, derived seed, override params, exit
  status, retry lineage, flight-dump reference.  Any row of a Pareto
  aggregate is traceable back to one exact, reproducible invocation.
  Ledger content is strictly deterministic (no wall-clock): the same sweep
  document yields line-for-line identical records at any worker count
  (line *order* follows completion order; compare sorted).
* **Worker telemetry** (:class:`WorkerTelemetry`) -- each worker samples
  wall clock, CPU time, peak RSS, kernel events and calendar stats per
  run, and streams heartbeat records to a shared *status file* the
  ``repro tail`` renderer turns into live progress + ETA.  Heartbeats are
  wall-clock-bearing by design and therefore live in their own file,
  never in rows or the ledger.
* **Straggler detection** (:func:`flag_stragglers`) -- robust z-scores
  (median/MAD) over per-run wall times flag runs that took anomalously
  long, alongside every run that hit its timeout; the flags land in the
  sweep's ``telemetry.json``.

The status-file format is line-oriented JSON so a crashed or still-running
sweep is always parseable up to its last complete line.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, IO, List, Mapping, Optional, Sequence, Union

__all__ = [
    "LEDGER_SCHEMA",
    "sweep_spec_hash",
    "LedgerWriter",
    "read_ledger",
    "ledger_run_records",
    "HeartbeatWriter",
    "WorkerTelemetry",
    "flight_dump_name",
    "robust_z_scores",
    "flag_stragglers",
    "telemetry_summary",
    "read_status",
    "render_status",
]

#: Bump when ledger record fields change shape.
LEDGER_SCHEMA = 1

#: Robust z-score above which a run is flagged as a straggler.
STRAGGLER_Z_THRESHOLD = 3.5


def sweep_spec_hash(doc: Mapping[str, Any]) -> str:
    """A short stable digest of a sweep document.

    Canonical-JSON SHA-256, truncated to 16 hex chars: enough to pin a
    ledger to the exact sweep document that produced it without bloating
    every record.
    """
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# ---------------------------------------------------------------- run ledger


class LedgerWriter:
    """Append-only JSONL ledger of one sweep's runs.

    Record kinds (``"record"`` field): ``sweep`` (head: name, spec hash,
    planned run count), ``run`` (one per finished run: identity, params,
    status, retry lineage) and ``sweep_end`` (final status counts).  Every
    record is one sorted-key JSON line containing only deterministic
    content, so two sweeps of the same document produce identical lines in
    any execution order.
    """

    def __init__(
        self,
        sink: Union[str, Path, IO[str]],
        sweep: str,
        spec_hash: str,
        runs: int,
    ) -> None:
        self.sweep = sweep
        self.spec_hash = spec_hash
        self._owns_sink = not hasattr(sink, "write")
        self._fd: Optional[int] = None
        if self._owns_sink:
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            # O_APPEND fd, written with single os.write() calls: the
            # kernel serializes appends, so concurrent writers (or a
            # crash mid-record) can leave at most one torn *final* line,
            # never interleaved bytes mid-file.
            self._fd = os.open(
                path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC | os.O_APPEND,
                0o644,
            )
            self._sink: Optional[IO[str]] = None
        else:
            self._sink = sink  # type: ignore[assignment]
        self.run_records = 0
        self._write(
            {
                "record": "sweep",
                "schema": LEDGER_SCHEMA,
                "sweep": sweep,
                "spec_hash": spec_hash,
                "runs": runs,
            }
        )

    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        if self._fd is not None:
            os.write(self._fd, line.encode())
        else:
            self._sink.write(line)
            self._sink.flush()

    def record_run(self, row: Mapping[str, Any]) -> None:
        """Ledger one finished run from its result *row*.

        Only the deterministic identity/outcome subset of the row is
        recorded -- measurements stay in ``runs.jsonl``, timing in the
        status file.
        """
        record: Dict[str, Any] = {
            "record": "run",
            "sweep": self.sweep,
            "spec_hash": self.spec_hash,
            "run_id": row["run_id"],
            "index": row["index"],
            "replicate": row["replicate"],
            "seed": row["seed"],
            "params": row["params"],
            "status": row["status"],
            "attempts": row.get("attempts", 1),
        }
        if row.get("error") is not None:
            record["error"] = row["error"]
        if row.get("attempt_history"):
            record["attempt_history"] = row["attempt_history"]
        if row.get("flight_dump") is not None:
            record["flight_dump"] = row["flight_dump"]
        self.run_records += 1
        self._write(record)

    def close(self, status_counts: Optional[Mapping[str, int]] = None) -> None:
        self._write(
            {
                "record": "sweep_end",
                "sweep": self.sweep,
                "spec_hash": self.spec_hash,
                "runs_recorded": self.run_records,
                "status": dict(status_counts or {}),
            }
        )
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def read_ledger(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a ledger file; tolerates a truncated (crashed) last line."""
    records: List[Dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn final line of a crashed sweep
    return records


def ledger_run_records(
    records: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """The ``run`` records of a parsed ledger, ordered by run index."""
    runs = [dict(r) for r in records if r.get("record") == "run"]
    runs.sort(key=lambda r: r.get("index", 0))
    return runs


# ------------------------------------------------------------ status stream


class HeartbeatWriter:
    """Append-only writer of single-line JSON heartbeat records.

    Workers and the runner share one status file; each record is issued
    as a single ``os.write()`` on an ``O_APPEND`` descriptor, which POSIX
    keeps atomic for lines below ``PIPE_BUF`` -- concurrent writers
    interleave whole lines, never bytes.  (A buffered ``write()+flush()``
    does *not* give that guarantee: the stdio buffer may flush in several
    syscalls, tearing lines mid-record.)
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def write(self, record: Mapping[str, Any]) -> None:
        if self._fd is None:
            raise ValueError("heartbeat writer is closed")
        os.write(self._fd, (json.dumps(record, sort_keys=True) + "\n").encode())

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def _cpu_seconds() -> float:
    times = os.times()
    return times.user + times.system


def _max_rss_kb() -> int:
    """Peak resident set of this process in KiB (0 where unsupported).

    ``ru_maxrss`` is a process-lifetime high-water mark, so on a pool
    worker that executes several runs the value is the peak *so far*, not
    per-run -- still the right number for "which run blew up memory".
    """
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # Linux reports KiB; macOS reports bytes.
    rss = usage.ru_maxrss
    return int(rss // 1024) if rss > 1 << 30 else int(rss)


class WorkerTelemetry:
    """Per-run resource sampling and heartbeat streaming inside a worker.

    Construct at the top of a run (captures wall/CPU baselines), then
    :meth:`attach` the simulator once the testbed exists -- with a status
    file configured this posts a self-rescheduling *simulation-time* tick
    that writes one heartbeat per ``interval_ns`` of simulated time.
    Sim-time ticks keep the sampling schedule deterministic (the tick
    events themselves are part of the seeded event stream), while the
    *contents* of a heartbeat carry wall-clock and are quarantined to the
    status file.  :meth:`finish` returns the run's telemetry digest.
    """

    def __init__(
        self,
        run_id: str,
        attempt: int = 1,
        index: int = 0,
        status_path: Optional[Union[str, Path]] = None,
        interval_ns: Optional[int] = None,
    ) -> None:
        self.run_id = run_id
        self.attempt = attempt
        self.index = index
        self.interval_ns = interval_ns
        self.heartbeats = 0
        self._writer = (
            HeartbeatWriter(status_path) if status_path is not None else None
        )
        self._sim: Optional[Any] = None
        self._duration_ns = 0
        self._t0 = time.time()
        self._cpu0 = _cpu_seconds()
        if self._writer is not None:
            self._writer.write(
                {
                    "hb": "run_start",
                    "run_id": run_id,
                    "attempt": attempt,
                    "index": index,
                    "pid": os.getpid(),
                    "t": self._t0,
                }
            )

    def attach(self, sim: Any, duration_ns: int) -> None:
        """Hook the kernel; starts the heartbeat tick chain if streaming."""
        self._sim = sim
        self._duration_ns = max(1, duration_ns)
        if self._writer is not None:
            interval = self.interval_ns or max(1, duration_ns // 8)
            self.interval_ns = interval
            sim.post(interval, self._tick)

    def _tick(self) -> None:
        self.heartbeats += 1
        sim = self._sim
        assert sim is not None and self._writer is not None
        self._writer.write(
            {
                "hb": "tick",
                "run_id": self.run_id,
                "attempt": self.attempt,
                "pid": os.getpid(),
                "t": time.time(),
                "sim_ns": sim.now,
                "progress": min(1.0, sim.now / self._duration_ns),
                "events": sim.stats.fired,
                "rss_kb": _max_rss_kb(),
                "cpu_s": round(_cpu_seconds() - self._cpu0, 6),
            }
        )
        sim.post(self.interval_ns, self._tick)

    def finish(
        self, status: str, error: Optional[str] = None
    ) -> Dict[str, Any]:
        """Close the run out; returns its telemetry digest (side channel).

        The digest rides back to the runner under the row's ``_telemetry``
        key and is stripped before the row reaches JSONL/aggregation --
        wall-clock must never contaminate the deterministic artifacts.
        """
        wall_s = time.time() - self._t0
        sim = self._sim
        stats = sim.stats if sim is not None else None
        telemetry: Dict[str, Any] = {
            "run_id": self.run_id,
            "index": self.index,
            "attempt": self.attempt,
            "status": status,
            "wall_s": wall_s,
            "cpu_s": _cpu_seconds() - self._cpu0,
            "max_rss_kb": _max_rss_kb(),
            "events": stats.fired if stats is not None else 0,
            "events_per_s": (
                stats.fired / wall_s if stats is not None and wall_s > 0
                else 0.0
            ),
            "calendar_high_water": (
                stats.calendar_high_water if stats is not None else 0
            ),
            "compacted": stats.compacted if stats is not None else 0,
            "heartbeats": self.heartbeats,
        }
        if error is not None:
            telemetry["error"] = error
        if self._writer is not None:
            self._writer.write(
                {
                    "hb": "run_end",
                    "run_id": self.run_id,
                    "attempt": self.attempt,
                    "index": self.index,
                    "pid": os.getpid(),
                    "t": time.time(),
                    "status": status,
                    "wall_s": round(wall_s, 6),
                }
            )
            self._writer.close()
        return telemetry


def flight_dump_name(run_id: str, attempt: int) -> str:
    """Deterministic flight-dump file name for one attempt of one run."""
    return f"{run_id.replace(':', '_')}.attempt{attempt}.json"


# --------------------------------------------------------------- stragglers


def robust_z_scores(values: Sequence[float]) -> List[float]:
    """Modified z-scores (median/MAD, 0.6745 scaling) of *values*.

    Robust against the very outliers it hunts: a few extreme stragglers
    barely move the median/MAD, so they cannot mask themselves the way
    they would under a mean/stddev score.  With zero MAD (at least half
    the values identical) every score is 0 -- nothing can be anomalous
    relative to a degenerate spread.
    """
    if not values:
        return []
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2
    deviations = sorted(abs(v - median) for v in values)
    if len(deviations) % 2:
        mad = deviations[mid]
    else:
        mad = (deviations[mid - 1] + deviations[mid]) / 2
    if mad == 0:
        return [0.0 for _ in values]
    return [0.6745 * (v - median) / mad for v in values]


def flag_stragglers(
    telemetry: Sequence[Mapping[str, Any]],
    threshold: float = STRAGGLER_Z_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Straggler/anomaly flags across one sweep's telemetry digests.

    A run is flagged when it hit its timeout (definitionally a straggler)
    or when its wall time's robust z-score exceeds *threshold*.  Returns
    flags sorted by descending z (ties by run id).
    """
    walls = [float(t.get("wall_s", 0.0)) for t in telemetry]
    scores = robust_z_scores(walls)
    flags: List[Dict[str, Any]] = []
    for entry, z in zip(telemetry, scores):
        reasons: List[str] = []
        if entry.get("status") == "timeout":
            reasons.append("timeout")
        if z > threshold:
            reasons.append(f"slow (robust z {z:.1f})")
        if reasons:
            flags.append(
                {
                    "run_id": entry.get("run_id"),
                    "attempt": entry.get("attempt", 1),
                    "wall_s": float(entry.get("wall_s", 0.0)),
                    "z": round(z, 3),
                    "reasons": reasons,
                }
            )
    flags.sort(key=lambda f: (-f["z"], f["run_id"] or ""))
    return flags


def telemetry_summary(
    sweep: str,
    telemetry: Sequence[Mapping[str, Any]],
    threshold: float = STRAGGLER_Z_THRESHOLD,
) -> Dict[str, Any]:
    """The ``telemetry.json`` document: per-run digests + straggler flags.

    Deliberately a *separate* artifact from ``summary.json``: everything
    here is wall-clock-derived and therefore excluded from the campaign
    byte-determinism contract.
    """
    ordered = sorted(
        (dict(t) for t in telemetry),
        key=lambda t: (t.get("index", 0), t.get("attempt", 1)),
    )
    walls = [t["wall_s"] for t in ordered] or [0.0]
    return {
        "campaign": sweep,
        "runs": len(ordered),
        "wall_s": {
            "total": sum(walls),
            "min": min(walls),
            "max": max(walls),
            "mean": sum(walls) / len(walls),
        },
        "max_rss_kb": max((t.get("max_rss_kb", 0) for t in ordered),
                          default=0),
        "events": sum(t.get("events", 0) for t in ordered),
        "stragglers": flag_stragglers(ordered, threshold=threshold),
        "per_run": ordered,
    }


# ------------------------------------------------------------ status reader


def read_status(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a status file; tolerates the torn last line of a live sweep."""
    records: List[Dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _fmt_duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render_status(
    records: Sequence[Mapping[str, Any]],
    now: Optional[float] = None,
) -> str:
    """Live progress + ETA view of one sweep's status file (``repro tail``).

    A headline (runs finished / total, status mix, elapsed, ETA from the
    completion rate so far), a table of in-flight runs from their latest
    heartbeat (sim progress, events, RSS, heartbeat age), and the final
    status line once the sweep has ended.
    """
    from repro.analysis.report import render_table

    if now is None:
        now = time.time()
    sweep = next((r for r in records if r.get("hb") == "sweep"), None)
    end = next((r for r in records if r.get("hb") == "sweep_end"), None)
    if sweep is None:
        return "(no sweep record yet -- is this a status file?)"
    total = sweep.get("total", 0)
    t0 = sweep.get("t", now)

    # A run finishes once, however many attempts it took: `finished` is
    # keyed by run_id and a retry's run_start supersedes the previous
    # attempt's run_end, so `done` never exceeds the sweep total.
    finished: Dict[str, Mapping[str, Any]] = {}
    started: Dict[str, Mapping[str, Any]] = {}
    latest_tick: Dict[str, Mapping[str, Any]] = {}
    for record in records:
        kind = record.get("hb")
        run_id = str(record.get("run_id"))
        attempt = record.get("attempt", 1)
        key = f"{run_id}#{attempt}"
        if kind == "run_start":
            started[key] = record
            prior = finished.get(run_id)
            if prior is not None and prior.get("attempt", 1) < attempt:
                finished.pop(run_id)
        elif kind == "tick":
            latest_tick[key] = record
        elif kind == "run_end":
            finished[run_id] = record
            started.pop(key, None)
            latest_tick.pop(key, None)

    by_status: Dict[str, int] = {}
    for record in finished.values():
        status = record.get("status", "?")
        by_status[status] = by_status.get(status, 0) + 1

    done = len(finished)
    elapsed = max(0.0, (end.get("t", now) if end else now) - t0)
    mix = ", ".join(f"{k}={v}" for k, v in sorted(by_status.items())) or "-"
    lines = [
        f"sweep {sweep.get('sweep', '?')}: {done}/{total} runs finished "
        f"({mix}), elapsed {_fmt_duration(elapsed)}"
    ]
    if end is not None:
        lines[0] += "  [complete]"
    elif done and total > done and elapsed > 0:
        eta = (total - done) * elapsed / done
        lines[0] += f", ETA {_fmt_duration(eta)}"

    inflight_rows: List[List[str]] = []
    for key, start in sorted(started.items()):
        tick = latest_tick.get(key)
        if tick is not None:
            progress = f"{tick.get('progress', 0.0) * 100:.0f}%"
            events = f"{tick.get('events', 0):,}"
            rss = f"{tick.get('rss_kb', 0) / 1024:.0f}MB"
            age = f"{max(0.0, now - tick.get('t', now)):.1f}s"
        else:
            progress, events, rss = "0%", "-", "-"
            age = f"{max(0.0, now - start.get('t', now)):.1f}s"
        inflight_rows.append(
            [
                str(start.get("run_id")),
                str(start.get("attempt", 1)),
                str(start.get("pid", "-")),
                progress,
                events,
                rss,
                age,
            ]
        )
    if inflight_rows:
        lines.append(
            render_table(
                ["run", "attempt", "pid", "sim", "events", "rss", "hb age"],
                inflight_rows,
                title="In flight",
            )
        )
    return "\n\n".join(lines)
