"""Per-flow SLO monitors: latency, jitter, deadline, loss, duplicates.

The paper's resource-reduction claim holds only *at equal QoS*; this module
makes "equal QoS" a checkable contract.  An :class:`SloSpec` states one
flow's bounds (max latency, max jitter, deadline, loss budget, duplicate
tolerance); an :class:`SloPolicy` maps specs onto flows -- per flow, per
traffic class, or as a default -- and merges in the ``deadline_ns`` a
:class:`~repro.traffic.flows.FlowSpec` already carries.  During a run an
:class:`SloMonitor` streams per-frame checks off the analyzer's arrival
hook; at the end :meth:`SloMonitor.report` adds the population checks
(jitter as latency standard deviation -- the paper's jitter metric -- and
loss from sequence accounting) and returns an :class:`SloReport` of
per-flow pass/fail verdicts with worst-case watermarks.

Streaming checks keep O(1) state per flow (sum, sum of squares, seen-seq
set); violation listings are bounded so a wholly broken flow cannot grow
the report without bound -- overflow is counted, never dropped silently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass

__all__ = [
    "SloSpec",
    "SloPolicy",
    "SloMonitor",
    "SloViolation",
    "FlowVerdict",
    "SloReport",
]

#: Violation kinds, in the order verdict tables list them.
VIOLATION_KINDS = ("latency", "deadline", "jitter", "loss", "duplicate")

#: Per-flow cap on individually listed violations; the verdict's counters
#: keep the true totals.
_MAX_VIOLATIONS_LISTED = 64


def _ns_field(data: Dict[str, Any], stem: str, flow: str) -> Optional[int]:
    """Read ``<stem>_ns`` or ``<stem>_us`` (exclusive) from a spec dict."""
    ns_key, us_key = f"{stem}_ns", f"{stem}_us"
    if ns_key in data and us_key in data:
        raise ConfigurationError(
            f"SLO {flow}: give {ns_key} or {us_key}, not both"
        )
    if ns_key in data:
        return int(data[ns_key])
    if us_key in data:
        return int(round(float(data[us_key]) * 1_000))
    return None


@dataclass(frozen=True)
class SloSpec:
    """One flow's service-level bounds; ``None`` means unchecked."""

    latency_ns: Optional[int] = None    # per-frame end-to-end bound
    jitter_ns: Optional[int] = None     # latency stddev bound (population)
    deadline_ns: Optional[int] = None   # per-frame deadline (counts misses)
    max_loss: Optional[float] = None    # lost/expected budget, 0.0 = lossless
    allow_duplicates: bool = True       # False: any duplicate seq violates

    _FIELDS = ("latency_ns", "jitter_ns", "deadline_ns", "max_loss")

    def __post_init__(self) -> None:
        for name in ("latency_ns", "jitter_ns", "deadline_ns"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"SLO {name} must be positive, got {value}"
                )
        if self.max_loss is not None and not 0.0 <= self.max_loss <= 1.0:
            raise ConfigurationError(
                f"SLO max_loss must be in [0, 1], got {self.max_loss}"
            )

    @property
    def is_empty(self) -> bool:
        return (
            all(getattr(self, name) is None for name in self._FIELDS)
            and self.allow_duplicates
        )

    def merged_over(self, base: "SloSpec") -> "SloSpec":
        """This spec's set fields layered over *base*'s."""
        changes = {
            name: getattr(base, name)
            for name in self._FIELDS
            if getattr(self, name) is None
        }
        if not changes and self.allow_duplicates == base.allow_duplicates:
            return self
        changes["allow_duplicates"] = (
            self.allow_duplicates and base.allow_duplicates
        )
        return replace(self, **changes)

    @classmethod
    def from_dict(cls, data: Dict[str, Any], flow: str = "spec") -> "SloSpec":
        known = {
            "latency_ns", "latency_us", "jitter_ns", "jitter_us",
            "deadline_ns", "deadline_us", "max_loss", "allow_duplicates",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"SLO {flow}: unknown keys {sorted(unknown)}"
            )
        return cls(
            latency_ns=_ns_field(data, "latency", flow),
            jitter_ns=_ns_field(data, "jitter", flow),
            deadline_ns=_ns_field(data, "deadline", flow),
            max_loss=(
                float(data["max_loss"]) if "max_loss" in data else None
            ),
            allow_duplicates=bool(data.get("allow_duplicates", True)),
        )

    def as_dict(self) -> Dict[str, Any]:
        result: Dict[str, Any] = {
            name: getattr(self, name)
            for name in self._FIELDS
            if getattr(self, name) is not None
        }
        if not self.allow_duplicates:
            result["allow_duplicates"] = False
        return result


class SloPolicy:
    """Maps :class:`SloSpec` bounds onto flows.

    Resolution layers, most specific wins field by field: per-flow spec,
    then per-traffic-class spec, then the policy default, then the
    ``deadline_ns`` the flow definition itself carries (so TS flows with
    deadlines are monitored even under an empty policy).
    """

    def __init__(
        self,
        default: Optional[SloSpec] = None,
        per_class: Optional[Dict[TrafficClass, SloSpec]] = None,
        per_flow: Optional[Dict[int, SloSpec]] = None,
    ) -> None:
        self.default = default or SloSpec()
        self.per_class = dict(per_class or {})
        self.per_flow = dict(per_flow or {})

    def resolve(self, flow: FlowSpec) -> SloSpec:
        spec = SloSpec(deadline_ns=flow.deadline_ns)
        spec = self.default.merged_over(spec)
        class_spec = self.per_class.get(flow.traffic_class)
        if class_spec is not None:
            spec = class_spec.merged_over(spec)
        flow_spec = self.per_flow.get(flow.flow_id)
        if flow_spec is not None:
            spec = flow_spec.merged_over(spec)
        return spec

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloPolicy":
        """Parse the ``"slo"`` scenario-spec stanza.

        ::

            {"default": {"max_loss": 0.0},
             "class":   {"TS": {"latency_us": 500, "jitter_us": 100}},
             "flows":   {"0": {"latency_us": 50}}}
        """
        unknown = set(data) - {"default", "class", "flows"}
        if unknown:
            raise ConfigurationError(
                f"SLO policy: unknown keys {sorted(unknown)}"
            )
        per_class: Dict[TrafficClass, SloSpec] = {}
        for class_name, spec_data in data.get("class", {}).items():
            try:
                traffic_class = TrafficClass[class_name.upper()]
            except KeyError:
                raise ConfigurationError(
                    f"SLO policy: unknown traffic class {class_name!r}"
                ) from None
            per_class[traffic_class] = SloSpec.from_dict(
                spec_data, f"class {class_name}"
            )
        per_flow = {
            int(flow_id): SloSpec.from_dict(spec_data, f"flow {flow_id}")
            for flow_id, spec_data in data.get("flows", {}).items()
        }
        return cls(
            default=SloSpec.from_dict(data.get("default", {}), "default"),
            per_class=per_class,
            per_flow=per_flow,
        )


@dataclass(frozen=True)
class SloViolation:
    """One recorded breach of one flow's bounds."""

    flow_id: int
    kind: str          # one of VIOLATION_KINDS
    time_ns: int       # simulation time of detection (end of run for
                       # population checks)
    observed: float
    bound: float
    seq: int = -1      # offending sequence number, when per-frame

    def as_dict(self) -> Dict[str, Any]:
        return {
            "flow_id": self.flow_id,
            "kind": self.kind,
            "time_ns": self.time_ns,
            "observed": self.observed,
            "bound": self.bound,
            "seq": self.seq,
        }


class _FlowState:
    """Streaming per-flow accumulator (O(1) memory besides the seq set)."""

    __slots__ = (
        "spec", "received", "duplicates", "latency_sum", "latency_sumsq",
        "max_latency_ns", "max_latency_seq", "deadline_misses",
        "latency_violations", "seen_seqs", "violations", "suppressed",
    )

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self.received = 0
        self.duplicates = 0
        self.latency_sum = 0
        self.latency_sumsq = 0
        self.max_latency_ns: Optional[int] = None
        self.max_latency_seq = -1
        self.deadline_misses = 0
        self.latency_violations = 0
        self.seen_seqs: set = set()
        self.violations: List[SloViolation] = []
        self.suppressed = 0

    def add_violation(self, violation: SloViolation) -> None:
        if len(self.violations) < _MAX_VIOLATIONS_LISTED:
            self.violations.append(violation)
        else:
            self.suppressed += 1

    @property
    def jitter_ns(self) -> Optional[float]:
        """Population standard deviation of latency (the paper's jitter)."""
        if self.received < 2:
            return None
        mean = self.latency_sum / self.received
        variance = self.latency_sumsq / self.received - mean * mean
        return math.sqrt(max(0.0, variance))

    @property
    def mean_latency_ns(self) -> Optional[float]:
        if not self.received:
            return None
        return self.latency_sum / self.received


@dataclass(frozen=True)
class FlowVerdict:
    """One flow's end-of-run SLO outcome."""

    flow_id: int
    traffic_class: str
    spec: SloSpec
    expected: int
    received: int                    # unique sequence numbers delivered
    duplicates: int
    lost: int
    loss_rate: float
    max_latency_ns: Optional[int]    # worst-case watermark
    mean_latency_ns: Optional[float]
    jitter_ns: Optional[float]
    deadline_misses: int
    latency_violations: int
    violations: Tuple[SloViolation, ...]
    suppressed_violations: int

    @property
    def failures(self) -> Tuple[str, ...]:
        """The violation kinds this flow breached (deduplicated, ordered)."""
        kinds = {v.kind for v in self.violations}
        return tuple(k for k in VIOLATION_KINDS if k in kinds)

    @property
    def passed(self) -> bool:
        return not self.violations and not self.suppressed_violations

    @property
    def monitored(self) -> bool:
        return not self.spec.is_empty

    def as_dict(self) -> Dict[str, Any]:
        return {
            "flow_id": self.flow_id,
            "class": self.traffic_class,
            "spec": self.spec.as_dict(),
            "passed": self.passed,
            "failures": list(self.failures),
            "expected": self.expected,
            "received": self.received,
            "duplicates": self.duplicates,
            "lost": self.lost,
            "loss_rate": self.loss_rate,
            "max_latency_ns": self.max_latency_ns,
            "mean_latency_ns": self.mean_latency_ns,
            "jitter_ns": self.jitter_ns,
            "deadline_misses": self.deadline_misses,
            "latency_violations": self.latency_violations,
            "violations": [v.as_dict() for v in self.violations],
            "suppressed_violations": self.suppressed_violations,
        }


@dataclass
class SloReport:
    """All flows' verdicts plus run-level rollups."""

    verdicts: Dict[int, FlowVerdict] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts.values())

    @property
    def monitored(self) -> int:
        return sum(1 for v in self.verdicts.values() if v.monitored)

    @property
    def failed_flows(self) -> Tuple[int, ...]:
        return tuple(
            flow_id
            for flow_id, verdict in sorted(self.verdicts.items())
            if not verdict.passed
        )

    @property
    def total_violations(self) -> int:
        return sum(
            len(v.violations) + v.suppressed_violations
            for v in self.verdicts.values()
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "monitored_flows": self.monitored,
            "failed_flows": list(self.failed_flows),
            "total_violations": self.total_violations,
            "flows": {
                str(flow_id): verdict.as_dict()
                for flow_id, verdict in sorted(self.verdicts.items())
            },
        }


class SloMonitor:
    """Streams per-frame checks; finalizes population checks on report.

    Hooked into :class:`~repro.network.analyzer.TsnAnalyzer` (which already
    computes each arrival's end-to-end latency); optionally mirrors
    violation counts into a ``slo_violations_total`` registry counter so
    the time-series layer can plot violation rate over time.
    """

    def __init__(
        self,
        policy: SloPolicy,
        flows: FlowSet,
        metrics: Optional["Any"] = None,
    ) -> None:
        self.policy = policy
        self._states: Dict[int, _FlowState] = {}
        self._flows: Dict[int, FlowSpec] = {}
        self._violation_counter = (
            metrics.counter(
                "slo_violations_total", "SLO violations by flow and kind"
            )
            if metrics is not None
            else None
        )
        for flow in flows:
            self._flows[flow.flow_id] = flow
            self._states[flow.flow_id] = _FlowState(policy.resolve(flow))

    # ------------------------------------------------------------- streaming

    def observe(self, flow_id: int, seq: int, latency_ns: int,
                now_ns: int) -> None:
        """One arrival: latency/deadline/duplicate checks, watermarks."""
        state = self._states.get(flow_id)
        if state is None:
            return
        spec = state.spec
        if seq in state.seen_seqs:
            state.duplicates += 1
            if not spec.allow_duplicates:
                self._violate(
                    state,
                    SloViolation(flow_id, "duplicate", now_ns,
                                 observed=state.duplicates, bound=0, seq=seq),
                )
            return
        state.seen_seqs.add(seq)
        state.received += 1
        state.latency_sum += latency_ns
        state.latency_sumsq += latency_ns * latency_ns
        if state.max_latency_ns is None or latency_ns > state.max_latency_ns:
            state.max_latency_ns = latency_ns
            state.max_latency_seq = seq
        if spec.latency_ns is not None and latency_ns > spec.latency_ns:
            state.latency_violations += 1
            self._violate(
                state,
                SloViolation(flow_id, "latency", now_ns,
                             observed=latency_ns, bound=spec.latency_ns,
                             seq=seq),
            )
        if spec.deadline_ns is not None and latency_ns > spec.deadline_ns:
            state.deadline_misses += 1
            self._violate(
                state,
                SloViolation(flow_id, "deadline", now_ns,
                             observed=latency_ns, bound=spec.deadline_ns,
                             seq=seq),
            )

    def _violate(self, state: _FlowState, violation: SloViolation) -> None:
        state.add_violation(violation)
        if self._violation_counter is not None:
            self._violation_counter.inc(
                flow=violation.flow_id, kind=violation.kind
            )

    # ------------------------------------------------------------ finalizing

    def report(
        self,
        expected_by_flow: Dict[int, int],
        end_ns: int = 0,
    ) -> SloReport:
        """Run the end-of-run checks (jitter, loss) and build the report."""
        report = SloReport()
        for flow_id, state in sorted(self._states.items()):
            spec = state.spec
            expected = expected_by_flow.get(flow_id, 0)
            lost = max(0, expected - state.received)
            loss_rate = lost / expected if expected else 0.0
            jitter = state.jitter_ns
            if (
                spec.jitter_ns is not None
                and jitter is not None
                and jitter > spec.jitter_ns
            ):
                self._violate(
                    state,
                    SloViolation(flow_id, "jitter", end_ns,
                                 observed=jitter, bound=spec.jitter_ns),
                )
            if spec.max_loss is not None and loss_rate > spec.max_loss:
                self._violate(
                    state,
                    SloViolation(flow_id, "loss", end_ns,
                                 observed=loss_rate, bound=spec.max_loss),
                )
            flow = self._flows[flow_id]
            report.verdicts[flow_id] = FlowVerdict(
                flow_id=flow_id,
                traffic_class=flow.traffic_class.name,
                spec=spec,
                expected=expected,
                received=state.received,
                duplicates=state.duplicates,
                lost=lost,
                loss_rate=loss_rate,
                max_latency_ns=state.max_latency_ns,
                mean_latency_ns=state.mean_latency_ns,
                jitter_ns=jitter,
                deadline_misses=state.deadline_misses,
                latency_violations=state.latency_violations,
                violations=tuple(state.violations),
                suppressed_violations=state.suppressed,
            )
        return report
