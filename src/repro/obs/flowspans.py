"""End-to-end frame journeys: causal spans across hosts, links, switches.

The registry (:mod:`repro.obs.metrics`) answers *how much* -- counts,
occupancy, residence distributions.  This module answers *where exactly one
frame spent its time*: a :class:`FlowSpanRecorder` collects hop events as a
frame traverses the testbed (injection at the talker, ingress at each
switch, enqueue, dequeue after the gate wait, last-bit transmission,
arrival at the listener) and reconstructs them into
:class:`FrameJourney` objects -- one per frame, keyed by the frame's
``(flow_id, seq)`` tag stamped at generation time.

Design constraints mirror the rest of the observability layer:

* **Zero cost when off.**  Every dataplane hook is a single
  ``if self._spans is not None`` guard; the default is ``None``.
* **Cheap when on.**  The hot path appends one plain tuple per event to a
  flat list -- no objects, no dict lookups, no per-frame allocation beyond
  the tuple itself.  Reconstruction into journeys happens after the run.
* **Bounded.**  ``max_events`` caps memory on long heavy-traffic runs;
  overflow is counted (``dropped_events``), never silently ignored.

Journeys feed three consumers: the Chrome-trace exporter (async "flow"
events, so Perfetto shows a frame's whole path on one track), the SLO layer
(per-hop attribution of a deadline miss), and :func:`flow_stats` (loss and
duplicate detection from sequence gaps -- the frame-level ground truth the
analyzer's aggregate counters approximate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError

__all__ = [
    "FlowSpanRecorder",
    "FrameJourney",
    "HopEvent",
    "HopSpan",
    "FlowJourneyStats",
    "flow_stats",
]

#: Event kinds in causal order along a path.  ``gen`` fires at the traffic
#: source, ``inject`` when the host NIC admits the frame, ``ingress`` when a
#: switch receives it, ``enqueue``/``dequeue``/``tx`` inside an egress port
#: (host NIC or switch), ``rx`` at the listener, ``drop`` wherever a frame
#: dies (detail carries no queue there; the node names the dropping port).
EVENT_KINDS = (
    "gen", "inject", "ingress", "enqueue", "dequeue", "tx", "rx", "drop",
)

#: Default event cap: ~8 events per hop per frame; 2**20 covers ~20k frames
#: over a 6-hop path while bounding the recorder to tens of MB.
DEFAULT_MAX_EVENTS = 1 << 20


@dataclass(frozen=True)
class HopEvent:
    """One observed instant of a frame's journey."""

    time_ns: int
    kind: str
    node: str      # emitting component: host, switch, or port name
    detail: int = -1   # queue id for enqueue/dequeue, else -1


@dataclass(frozen=True)
class HopSpan:
    """One egress port's handling of a frame, with the gate wait exposed."""

    node: str                        # port name, e.g. ``sw0.p1``
    queue_id: int
    arrived_ns: Optional[int]        # switch ingress (None at the host NIC)
    enqueued_ns: int
    dequeued_ns: Optional[int]       # None if never transmitted
    tx_ns: Optional[int]             # last data bit out

    @property
    def gate_wait_ns(self) -> Optional[int]:
        """Time spent queued (waiting for gate/arbitration), if known."""
        if self.dequeued_ns is None:
            return None
        return self.dequeued_ns - self.enqueued_ns

    @property
    def residence_ns(self) -> Optional[int]:
        """Enqueue to last-bit-out, if the frame left this port."""
        if self.tx_ns is None:
            return None
        return self.tx_ns - self.enqueued_ns


@dataclass
class FrameJourney:
    """Every observed event of one frame, in causal order."""

    frame_id: int
    flow_id: int
    seq: int
    events: List[HopEvent] = field(default_factory=list)

    @property
    def start_ns(self) -> int:
        return self.events[0].time_ns

    @property
    def end_ns(self) -> int:
        return self.events[-1].time_ns

    @property
    def delivered(self) -> bool:
        return any(event.kind == "rx" for event in self.events)

    @property
    def dropped(self) -> bool:
        return any(event.kind == "drop" for event in self.events)

    @property
    def drop_node(self) -> Optional[str]:
        for event in self.events:
            if event.kind == "drop":
                return event.node
        return None

    @property
    def end_to_end_ns(self) -> Optional[int]:
        """Generation (or first observation) to listener arrival."""
        if not self.delivered:
            return None
        return self.events[-1].time_ns - self.events[0].time_ns

    def hop_spans(self) -> List[HopSpan]:
        """Per-port spans reconstructed from enqueue/dequeue/tx triples.

        An ``ingress`` event is attached to the next ``enqueue`` (the
        switch-level receive that preceded the port-level admit); a hop cut
        short by a drop or the end of the run yields a partial span with
        ``None`` fields.
        """
        spans: List[HopSpan] = []
        pending_ingress: Optional[HopEvent] = None
        open_hop: Optional[Dict] = None

        def close(hop: Dict) -> None:
            spans.append(
                HopSpan(
                    node=hop["node"],
                    queue_id=hop["queue_id"],
                    arrived_ns=hop["arrived_ns"],
                    enqueued_ns=hop["enqueued_ns"],
                    dequeued_ns=hop.get("dequeued_ns"),
                    tx_ns=hop.get("tx_ns"),
                )
            )

        for event in self.events:
            if event.kind == "ingress":
                pending_ingress = event
            elif event.kind == "enqueue":
                if open_hop is not None:
                    close(open_hop)
                open_hop = {
                    "node": event.node,
                    "queue_id": event.detail,
                    "arrived_ns": (
                        pending_ingress.time_ns
                        if pending_ingress is not None
                        else None
                    ),
                    "enqueued_ns": event.time_ns,
                }
                pending_ingress = None
            elif event.kind == "dequeue":
                if open_hop is not None and open_hop["node"] == event.node:
                    open_hop["dequeued_ns"] = event.time_ns
            elif event.kind == "tx":
                if open_hop is not None and open_hop["node"] == event.node:
                    open_hop["tx_ns"] = event.time_ns
                    close(open_hop)
                    open_hop = None
        if open_hop is not None:
            close(open_hop)
        return spans


class FlowSpanRecorder:
    """Collects hop events; the journey layer's hot-path handle.

    Components receive this via their ``spans=`` parameter (``None`` keeps
    the uninstrumented fast path).  :meth:`record` is the only method the
    dataplane calls; everything else is post-run reconstruction.
    """

    __slots__ = ("max_events", "events", "dropped_events")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events <= 0:
            raise ConfigurationError(
                f"max_events must be positive, got {max_events}"
            )
        self.max_events = max_events
        #: Flat (time_ns, kind, node, frame_id, flow_id, seq, detail) tuples.
        self.events: List[Tuple[int, str, str, int, int, int, int]] = []
        self.dropped_events = 0

    def __len__(self) -> int:
        return len(self.events)

    # -------------------------------------------------------------- hot path

    def record(self, time_ns: int, kind: str, node: str, frame,
               detail: int = -1) -> None:
        """Append one hop event for *frame* (any object with
        ``frame_id``/``flow_id``/``seq`` attributes)."""
        events = self.events
        if len(events) >= self.max_events:
            self.dropped_events += 1
            return
        events.append(
            (time_ns, kind, node, frame.frame_id, frame.flow_id, frame.seq,
             detail)
        )

    # -------------------------------------------------------- reconstruction

    def journeys(self) -> List[FrameJourney]:
        """One :class:`FrameJourney` per observed frame.

        Events keep recording order, which is simulation-time order (the
        kernel's clock is monotonic), so each journey's event list is
        already causal.  Sorted by (flow, seq, frame) so FRER member
        streams of the same (flow, seq) stay adjacent.
        """
        by_frame: Dict[int, FrameJourney] = {}
        for time_ns, kind, node, frame_id, flow_id, seq, detail in self.events:
            journey = by_frame.get(frame_id)
            if journey is None:
                journey = by_frame[frame_id] = FrameJourney(
                    frame_id, flow_id, seq
                )
            journey.events.append(HopEvent(time_ns, kind, node, detail))
        return sorted(
            by_frame.values(),
            key=lambda j: (j.flow_id, j.seq, j.frame_id),
        )

    def flow_journeys(self) -> Dict[int, List[FrameJourney]]:
        result: Dict[int, List[FrameJourney]] = {}
        for journey in self.journeys():
            result.setdefault(journey.flow_id, []).append(journey)
        return result


@dataclass
class FlowJourneyStats:
    """Frame-level accounting of one flow, from journey reconstruction."""

    flow_id: int
    frames: int                      # distinct frames observed
    delivered: int                   # unique sequence numbers that arrived
    duplicates: int                  # extra arrivals of an already-seen seq
    dropped: int                     # journeys ending in an observed drop
    in_flight: int                   # neither delivered nor dropped
    missing_seqs: Tuple[int, ...]    # sequence gaps (bounded listing)
    max_end_to_end_ns: Optional[int]
    mean_end_to_end_ns: Optional[float]

    @property
    def lost(self) -> int:
        return len(self.missing_seqs)


#: Cap the per-flow missing-sequence listing (a wholly lost flow would
#: otherwise enumerate its entire expected range).
_MAX_MISSING_LISTED = 256


def flow_stats(
    journeys: Sequence[FrameJourney],
    expected_by_flow: Optional[Dict[int, int]] = None,
) -> Dict[int, FlowJourneyStats]:
    """Per-flow loss/duplicate/latency accounting over reconstructed
    journeys.

    *expected_by_flow* (flow -> frames emitted, as reported by the
    generators) extends gap detection past the highest sequence number that
    arrived; without it only interior gaps are visible.
    """
    by_flow: Dict[int, List[FrameJourney]] = {}
    for journey in journeys:
        by_flow.setdefault(journey.flow_id, []).append(journey)
    stats: Dict[int, FlowJourneyStats] = {}
    for flow_id, flow_journeys in sorted(by_flow.items()):
        seen: set = set()
        duplicates = dropped = in_flight = 0
        latencies: List[int] = []
        for journey in flow_journeys:
            if journey.delivered:
                if journey.seq in seen:
                    duplicates += 1
                else:
                    seen.add(journey.seq)
                    latency = journey.end_to_end_ns
                    if latency is not None:
                        latencies.append(latency)
            elif journey.dropped:
                dropped += 1
            else:
                in_flight += 1
        horizon = max(seen) + 1 if seen else 0
        if expected_by_flow is not None:
            horizon = max(horizon, expected_by_flow.get(flow_id, 0))
        missing = tuple(
            seq for seq in range(horizon) if seq not in seen
        )[:_MAX_MISSING_LISTED]
        stats[flow_id] = FlowJourneyStats(
            flow_id=flow_id,
            frames=len(flow_journeys),
            delivered=len(seen),
            duplicates=duplicates,
            dropped=dropped,
            in_flight=in_flight,
            missing_seqs=missing,
            max_end_to_end_ns=max(latencies) if latencies else None,
            mean_end_to_end_ns=(
                sum(latencies) / len(latencies) if latencies else None
            ),
        )
    return stats
