"""Labeled metric instruments and the registry that owns them.

The observability layer's core: a :class:`MetricsRegistry` hands out named
:class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments, each of
which fans out into one *series* per label set (``switch=sw0, port=0,
queue=7``).  The dataplane binds its series once at build time and the hot
path touches only plain integer fields -- no dict lookups, no string
formatting, nothing allocated per frame.

Conventions follow the Prometheus data model loosely (monotonic counters,
set/inc gauges with high-water tracking, cumulative histogram buckets) but
everything snapshots to plain dicts/JSON so downstream tooling needs no
dependency on this package.  Latency histograms default to log-scale
nanosecond buckets (:data:`DEFAULT_LATENCY_BUCKETS_NS`) because TSN latency
spans six orders of magnitude -- sub-microsecond cut-through all the way to
multi-millisecond CQF slot waits.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError

__all__ = [
    "Counter",
    "CounterSeries",
    "Gauge",
    "GaugeSeries",
    "Histogram",
    "HistogramSeries",
    "MetricsRegistry",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS_NS",
]

#: One label set, canonicalized: sorted ``(key, value)`` string pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def log_buckets(lo: int, hi: int, factor: float = 2.0) -> Tuple[int, ...]:
    """Geometric bucket bounds from *lo* up to at least *hi* (inclusive)."""
    if lo <= 0 or hi < lo:
        raise ConfigurationError(
            f"bucket range must satisfy 0 < lo <= hi, got [{lo}, {hi}]"
        )
    if factor <= 1.0:
        raise ConfigurationError(f"bucket factor must exceed 1, got {factor}")
    bounds: List[int] = []
    edge = float(lo)
    while True:
        bound = int(round(edge))
        if not bounds or bound > bounds[-1]:
            bounds.append(bound)
        if bound >= hi:
            break
        edge *= factor
    return tuple(bounds)


#: 64 ns .. ~1.1 s in powers of two -- covers serialization times, per-hop
#: residence, and whole-path latencies at every slot size the paper sweeps.
DEFAULT_LATENCY_BUCKETS_NS = log_buckets(64, 2**30)


class CounterSeries:
    """One monotonic counter series; the hot-path handle."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters are monotonic; cannot add {amount}"
            )
        self.value += amount


class GaugeSeries:
    """One gauge series with high-water (max observed) tracking."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0
        self.high_water = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class HistogramSeries:
    """One histogram series: cumulative-style buckets plus summary stats."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[int]) -> None:
        self.bounds = tuple(bounds)
        # One count per bound, plus the +inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        index = self._bucket_index(value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def _bucket_index(self, value: int) -> int:
        # Buckets are few (tens); bisect would win only at hundreds.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[int]:
        """Upper bound of the bucket containing the *q*-quantile observation.

        A bucketed estimate (exact values are not retained); ``None`` when
        the series is empty.  The overflow bucket reports the observed max.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        rank = max(1, int(round(q * self.count)))
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max


class _Instrument:
    """Shared naming/series bookkeeping of one registered instrument."""

    kind = "instrument"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, Any] = {}

    def _new_series(self) -> Any:
        raise NotImplementedError

    def labels(self, **labels: Any) -> Any:
        """The series for this label set, created on first use.

        This is the binding step: hold the returned series and update it
        directly on the hot path.
        """
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._new_series()
        return series

    def series(self) -> Iterator[Tuple[LabelKey, Any]]:
        return iter(sorted(self._series.items()))

    def _series_snapshot(self, series: Any) -> Dict[str, Any]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), **self._series_snapshot(series)}
                for key, series in self.series()
            ],
        }


class Counter(_Instrument):
    """A monotonically increasing count, per label set."""

    kind = "counter"

    def _new_series(self) -> CounterSeries:
        return CounterSeries()

    def inc(self, amount: int = 1, **labels: Any) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: Any) -> int:
        key = _label_key(labels)
        series = self._series.get(key)
        return series.value if series is not None else 0

    def total(self) -> int:
        """Sum over every series (all label sets)."""
        return sum(series.value for series in self._series.values())

    def _series_snapshot(self, series: CounterSeries) -> Dict[str, Any]:
        return {"value": series.value}


class Gauge(_Instrument):
    """A point-in-time level with high-water tracking, per label set."""

    kind = "gauge"

    def _new_series(self) -> GaugeSeries:
        return GaugeSeries()

    def set(self, value: float, **labels: Any) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1, **labels: Any) -> None:
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.labels(**labels).dec(amount)

    def value(self, **labels: Any) -> float:
        key = _label_key(labels)
        series = self._series.get(key)
        return series.value if series is not None else 0

    def high_water(self, **labels: Any) -> float:
        key = _label_key(labels)
        series = self._series.get(key)
        return series.high_water if series is not None else 0

    def max_high_water(self) -> float:
        """Worst high-water over every series (sizing-study shortcut)."""
        return max(
            (series.high_water for series in self._series.values()), default=0
        )

    def _series_snapshot(self, series: GaugeSeries) -> Dict[str, Any]:
        return {"value": series.value, "high_water": series.high_water}


class Histogram(_Instrument):
    """A bucketed distribution, per label set.

    *buckets* are ascending upper bounds; observations beyond the last
    bound land in an implicit overflow bucket.  The default suits
    nanosecond latencies.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets) if buckets is not None else (
            DEFAULT_LATENCY_BUCKETS_NS
        )
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs buckets")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly ascending"
            )
        self.bounds = bounds

    def _new_series(self) -> HistogramSeries:
        return HistogramSeries(self.bounds)

    def observe(self, value: int, **labels: Any) -> None:
        self.labels(**labels).observe(value)

    def _series_snapshot(self, series: HistogramSeries) -> Dict[str, Any]:
        return {
            "count": series.count,
            "sum": series.sum,
            "min": series.min,
            "max": series.max,
            "mean": series.mean,
            "p50": series.quantile(0.50),
            "p95": series.quantile(0.95),
            "p99": series.quantile(0.99),
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(series.bounds, series.bucket_counts)
            ]
            + [{"le": "inf", "count": series.bucket_counts[-1]}],
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Owns every instrument of one run; snapshot-to-dict/JSON.

    Requesting an existing name returns the same instrument, so components
    built independently (one :class:`~repro.switch.device.TsnSwitch` per
    topology node) share series space under common metric names.

    >>> registry = MetricsRegistry()
    >>> depth = registry.gauge("queue_depth").labels(switch="sw0", queue=7)
    >>> depth.set(3); depth.set(1)
    >>> registry.gauge("queue_depth").high_water(switch="sw0", queue=7)
    3
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(
            self._instruments[name] for name in sorted(self._instruments)
        )

    def _get(self, name: str, kind: str, factory) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} is a {existing.kind}, not a {kind}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[int]] = None,
    ) -> Histogram:
        return self._get(
            name, "histogram", lambda: Histogram(name, help, buckets)
        )

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, Any]:
        """Every instrument's series as one JSON-compatible dict."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
