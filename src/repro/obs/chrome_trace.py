"""Exporting trace records as Chrome trace-event JSON (and JSONL).

The Chrome trace-event format is the lingua franca of timeline viewers:
load the emitted file in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` and every gate window becomes a colored span on its
queue's track, with enqueue/tx/drop instants overlaid.  This turns the
append-only :class:`~repro.sim.trace.Tracer` log into the paper's Fig. 5
"gates breathing" picture, zoomable and searchable.

Three shapes are produced:

* **duration events** (``ph: "X"``) -- gate-open windows reconstructed from
  ``gate`` records (one track per queue per direction, one process per
  port engine);
* **instant events** (``ph: "i"``) -- every other record, grouped into one
  process per category with one thread per emitting component;
* **async events** (``ph: "b"/"n"/"e"``) -- frame journeys from a
  :class:`~repro.obs.flowspans.FlowSpanRecorder`: each frame's whole path
  becomes one async span on its flow's track, with every hop event as a
  named instant inside it.

All events carry the five keys the format requires (``name, ph, ts, pid,
tid``); timestamps are microseconds as the format dictates (simulation
nanoseconds / 1000).  ``process_sort_index`` metadata pins the process
ordering to allocation order so Perfetto's row layout is stable across
loads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.flowspans import FlowSpanRecorder
from repro.sim.trace import TraceRecord

__all__ = [
    "chrome_trace_events",
    "flow_span_events",
    "gate_span_events",
    "instant_events",
    "write_chrome_trace",
    "trace_to_jsonl",
]

PathLike = Union[str, Path]

#: Trace categories whose records describe gate state (handled as spans).
GATE_CATEGORY = "gate"


class _Tracks:
    """Allocates stable pid/tid numbers plus their naming metadata."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self.metadata: List[Dict[str, Any]] = []

    def pid(self, process: str) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = self._pids[process] = len(self._pids) + 1
            self.metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
            # Pin the viewer's row order to allocation order; without this
            # Perfetto sorts rows ad hoc and layouts shift between loads.
            self.metadata.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": pid},
                }
            )
        return pid

    def tid(self, pid: int, thread: str) -> int:
        tid = self._tids.get((pid, thread))
        if tid is None:
            tid = self._tids[(pid, thread)] = (
                sum(1 for key in self._tids if key[0] == pid) + 1
            )
            self.metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        return tid


def _us(time_ns: int) -> float:
    return time_ns / 1000.0


def gate_span_events(
    records: Iterable[TraceRecord],
    end_ns: Optional[int] = None,
    tracks: Optional[_Tracks] = None,
) -> List[Dict[str, Any]]:
    """Gate-open windows as complete (``"X"``) events.

    ``gate`` records carry the full 8-bit mask after each flip; this walks
    the per-engine mask history and emits one span per contiguous open
    window per queue.  Windows still open at *end_ns* (default: the last
    record's timestamp) are closed there so the viewer shows them.
    """
    tracks = tracks or _Tracks()
    # (engine, kind) -> previous mask; (engine, kind, queue) -> open-since ns
    last_mask: Dict[Tuple[str, str], int] = {}
    open_since: Dict[Tuple[str, str, int], int] = {}
    events: List[Dict[str, Any]] = []
    latest = 0

    def close(engine: str, kind: str, queue: int, at_ns: int) -> None:
        start = open_since.pop((engine, kind, queue))
        pid = tracks.pid(engine)
        events.append(
            {
                "name": f"q{queue} {kind}-gate open",
                "ph": "X",
                "ts": _us(start),
                "dur": _us(max(0, at_ns - start)),
                "pid": pid,
                "tid": tracks.tid(pid, f"{kind}-gate q{queue}"),
                "args": {"queue": queue, "direction": kind},
            }
        )

    for record in records:
        if record.category != GATE_CATEGORY:
            continue
        engine, _, kind_word = record.message.rpartition(" ")
        if not engine or not kind_word.endswith("-gates"):
            continue
        kind = kind_word[: -len("-gates")]
        fields = dict(record.fields)
        if "mask" not in fields:
            continue
        mask = int(str(fields["mask"]), 2)
        latest = max(latest, record.time)
        previous = last_mask.get((engine, kind))
        last_mask[(engine, kind)] = mask
        changed = mask if previous is None else mask ^ previous
        for queue in range(8):
            if not changed >> queue & 1:
                continue
            if mask >> queue & 1:
                open_since.setdefault((engine, kind, queue), record.time)
            elif (engine, kind, queue) in open_since:
                close(engine, kind, queue, record.time)
    horizon = latest if end_ns is None else end_ns
    for engine, kind, queue in sorted(open_since):
        close(engine, kind, queue, max(horizon, open_since[(engine, kind, queue)]))
    return events


def instant_events(
    records: Iterable[TraceRecord],
    tracks: Optional[_Tracks] = None,
) -> List[Dict[str, Any]]:
    """Non-gate records as thread-scoped instant (``"i"``) events.

    Each category becomes one process; the first token of the message (the
    emitting component, e.g. ``sw0.p0``) becomes the thread.
    """
    tracks = tracks or _Tracks()
    events: List[Dict[str, Any]] = []
    for record in records:
        if record.category == GATE_CATEGORY:
            continue
        component, _, detail = record.message.partition(" ")
        pid = tracks.pid(record.category)
        events.append(
            {
                "name": detail or record.message,
                "ph": "i",
                "ts": _us(record.time),
                "pid": pid,
                "tid": tracks.tid(pid, component),
                "s": "t",
                "args": dict(record.fields),
            }
        )
    return events


def flow_span_events(
    spans: FlowSpanRecorder,
    tracks: Optional[_Tracks] = None,
) -> List[Dict[str, Any]]:
    """Frame journeys as async (``"b"/"n"/"e"``) events.

    Each flow becomes one process (``flow 3``); each frame's journey is one
    async span identified by its unique frame id, so overlapping frames of
    the same flow nest instead of colliding.  The span opens at the first
    observed event (generation), closes at the last (listener arrival or
    drop), and every hop event in between shows as a named instant
    (``enqueue sw0.p1`` ...) inside the span.
    """
    tracks = tracks or _Tracks()
    events: List[Dict[str, Any]] = []
    for journey in spans.journeys():
        pid = tracks.pid(f"flow {journey.flow_id}")
        tid = tracks.tid(pid, "frames")
        span_id = f"0x{journey.frame_id:x}"
        name = f"flow {journey.flow_id} seq {journey.seq}"
        outcome = (
            "delivered" if journey.delivered
            else "dropped" if journey.dropped
            else "in-flight"
        )
        common = {"cat": "flow", "id": span_id, "pid": pid, "tid": tid}
        events.append(
            {
                "name": name,
                "ph": "b",
                "ts": _us(journey.start_ns),
                "args": {"seq": journey.seq, "outcome": outcome},
                **common,
            }
        )
        for event in journey.events[1:-1]:
            events.append(
                {
                    "name": f"{event.kind} {event.node}",
                    "ph": "n",
                    "ts": _us(event.time_ns),
                    "args": (
                        {"queue": event.detail} if event.detail >= 0 else {}
                    ),
                    **common,
                }
            )
        events.append(
            {
                "name": name,
                "ph": "e",
                "ts": _us(journey.end_ns),
                "args": {"outcome": outcome},
                **common,
            }
        )
    return events


def chrome_trace_events(
    records: Sequence[TraceRecord],
    end_ns: Optional[int] = None,
    extra_events: Sequence[Dict[str, Any]] = (),
    span_recorder: Optional[FlowSpanRecorder] = None,
) -> List[Dict[str, Any]]:
    """The full event array: metadata, gate spans, instants, flows, extras."""
    tracks = _Tracks()
    spans = gate_span_events(records, end_ns=end_ns, tracks=tracks)
    instants = instant_events(records, tracks=tracks)
    flows = (
        flow_span_events(span_recorder, tracks=tracks)
        if span_recorder is not None
        else []
    )
    return tracks.metadata + spans + instants + flows + list(extra_events)


def write_chrome_trace(
    records: Sequence[TraceRecord],
    path: PathLike,
    end_ns: Optional[int] = None,
    extra_events: Sequence[Dict[str, Any]] = (),
    span_recorder: Optional[FlowSpanRecorder] = None,
) -> Path:
    """Write a Chrome trace-event JSON array; open it in Perfetto."""
    path = Path(path)
    events = chrome_trace_events(records, end_ns=end_ns,
                                 extra_events=extra_events,
                                 span_recorder=span_recorder)
    path.write_text(json.dumps(events, indent=1))
    return path


def trace_to_jsonl(records: Iterable[TraceRecord], path: PathLike) -> Path:
    """One JSON object per record -- the grep/jq-friendly archival form."""
    path = Path(path)
    with path.open("w") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "time_ns": record.time,
                        "category": record.category,
                        "message": record.message,
                        **dict(record.fields),
                    },
                    sort_keys=True,
                )
            )
            handle.write("\n")
    return path
