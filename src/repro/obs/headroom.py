"""Resource-headroom observability: observed vs provisioned, down to BRAM.

The paper's provisioning model (Tables I/III) sizes every structure --
queues, buffer slots, the five table kinds -- and :mod:`repro.core.bram`
costs those sizes bit-exactly.  This module closes the loop from the other
side: it measures what a run *actually* demanded of each structure and
re-costs the switch at the observed sizes, so a report can say not just
"the TS queue peaked at 7 of 12 descriptors" but "this network carries
this workload in N fewer BRAM Kb under the same sizing policy".

Two layers:

* :class:`HeadroomRecorder` -- opt-in, cheap always-on occupancy probes.
  Each :class:`OccupancyProbe` keeps a time-weighted occupancy integral
  and a five-band time-in-occupancy histogram (empty, then quartiles of
  capacity), updated with a handful of integer ops per queue/pool
  transition.  Attached via ``Testbed(headroom=...)`` the same way as
  metrics/spans; when absent the dataplane pays nothing.

* :func:`build_headroom_report` -- joins peak demand (queue/pool
  high-water marks, table fills, exercised meters -- all available from
  plain run state, no recorder needed) with the recorder's time-weighted
  view when present, and re-costs each switch through
  :func:`repro.core.sizing.sufficient_config` /
  ``SwitchConfig.resource_report`` (i.e. ``core.bram.allocate``).  The
  resulting :class:`HeadroomReport` carries per-structure utilization,
  wasted Kb, and the cheapest sufficient configuration under the standard
  ``queue_depth_margin`` policy.

Campaign workers build the report *without* a recorder (peaks are exact
and deterministic; probes would only add overhead), which is how sweep
rows gain ``observed_bram_kb`` while staying byte-identical at any worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import SwitchConfig
from repro.core.sizing import ObservedDemand, sufficient_config

__all__ = [
    "BAND_LABELS",
    "OccupancyProbe",
    "PortHeadroomProbes",
    "HeadroomRecorder",
    "StructureHeadroom",
    "PortOccupancy",
    "HeadroomReport",
    "build_headroom_report",
]

#: Occupancy bands of the time-in-band histogram: empty, then quartiles of
#: capacity ((0-25%], (25-50%], (50-75%], (75-100%]).
BAND_LABELS: Tuple[str, ...] = ("empty", "le25", "le50", "le75", "le100")

#: Structure display names (resource-report rows) -> digest/metric slugs.
STRUCTURE_SLUGS: Dict[str, str] = {
    "Switch Tbl": "switch_tbl",
    "Multicast Tbl": "multicast_tbl",
    "Class. Tbl": "class_tbl",
    "Meter Tbl": "meter_tbl",
    "Gate Tbl": "gate_tbl",
    "CBS Tbl": "cbs_tbl",
    "Queues": "queues",
    "Buffers": "buffers",
}


class OccupancyProbe:
    """Time-weighted occupancy accounting of one bounded resource.

    Each :meth:`update` charges the time since the previous transition to
    the occupancy (and band) that was in effect -- an exact integral, not a
    sampling approximation.  The band of every possible occupancy is
    precomputed so the per-event cost is a subtraction, two adds and a
    list index.
    """

    __slots__ = (
        "capacity",
        "occupancy",
        "peak",
        "weighted_ns",
        "band_ns",
        "_last_ns",
        "_band",
        "_band_of",
    )

    def __init__(self, capacity: int, start_ns: int = 0):
        self.capacity = capacity
        self.occupancy = 0
        self.peak = 0
        self.weighted_ns = 0            # integral of occupancy over time
        self.band_ns = [0] * len(BAND_LABELS)
        self._last_ns = start_ns
        self._band = 0
        self._band_of = tuple(
            0 if occ == 0 else min(4, -(-4 * occ // capacity))
            for occ in range(capacity + 1)
        )

    def update(self, now_ns: int, occupancy: int) -> None:
        dt = now_ns - self._last_ns
        if dt:
            self.weighted_ns += self.occupancy * dt
            self.band_ns[self._band] += dt
            self._last_ns = now_ns
        self.occupancy = occupancy
        self._band = self._band_of[occupancy]
        if occupancy > self.peak:
            self.peak = occupancy

    def finalize(self, end_ns: int) -> None:
        """Charge the tail interval up to *end_ns* (idempotent)."""
        self.update(end_ns, self.occupancy)

    @property
    def observed_ns(self) -> int:
        """Total time covered by the integral (0 before any update)."""
        return sum(self.band_ns)

    def mean(self) -> float:
        """Time-weighted mean occupancy over the observed span."""
        total = self.observed_ns
        return self.weighted_ns / total if total else 0.0

    def band_fractions(self) -> List[float]:
        """Fraction of observed time spent in each occupancy band."""
        total = self.observed_ns
        if not total:
            return [0.0] * len(BAND_LABELS)
        return [t / total for t in self.band_ns]


class PortHeadroomProbes:
    """The probe set of one egress port: one per queue, one for the pool.

    Ports sharing a buffer pool (``shared_buffers``) share the pool probe,
    so its integral sees every allocation regardless of which port made it.
    """

    __slots__ = ("queues", "pool")

    def __init__(self, queues: List[OccupancyProbe], pool: OccupancyProbe):
        self.queues = queues
        self.pool = pool

    def on_queue(self, queue_id: int, occupancy: int, now_ns: int) -> None:
        self.queues[queue_id].update(now_ns, occupancy)

    def on_buffer(self, in_use: int, now_ns: int) -> None:
        self.pool.update(now_ns, in_use)


class HeadroomRecorder:
    """Owns every probe of one scenario; hands each port its bound set."""

    def __init__(self) -> None:
        self.ports: Dict[Tuple[str, int], PortHeadroomProbes] = {}
        self._pool_probes: Dict[int, OccupancyProbe] = {}
        self._all: List[OccupancyProbe] = []
        self.end_ns: Optional[int] = None

    def for_port(
        self,
        switch: str,
        port_id: int,
        queue_num: int,
        queue_depth: int,
        pool: Any,
        start_ns: int = 0,
    ) -> PortHeadroomProbes:
        """Create (and register) the probe set for one egress port.

        *pool* is the port's :class:`~repro.switch.queueing.BufferPool`;
        identity-keyed so a shared pool gets exactly one probe.
        """
        queues = [
            OccupancyProbe(queue_depth, start_ns) for _ in range(queue_num)
        ]
        self._all.extend(queues)
        pool_probe = self._pool_probes.get(id(pool))
        if pool_probe is None:
            pool_probe = OccupancyProbe(pool.slots, start_ns)
            self._pool_probes[id(pool)] = pool_probe
            self._all.append(pool_probe)
        probes = PortHeadroomProbes(queues, pool_probe)
        self.ports[(switch, port_id)] = probes
        return probes

    def port_probes(
        self, switch: str, port_id: int
    ) -> Optional[PortHeadroomProbes]:
        return self.ports.get((switch, port_id))

    def finalize(self, end_ns: int) -> None:
        """Flush every probe's tail interval at scenario end."""
        self.end_ns = end_ns
        for probe in self._all:
            probe.finalize(end_ns)


# --------------------------------------------------------------- the report


@dataclass(frozen=True)
class StructureHeadroom:
    """Observed vs provisioned for one sized structure of one switch."""

    switch: str
    structure: str              # resource-report row name, e.g. "Queues"
    provisioned: int            # configured entries/slots/depth
    peak: int                   # worst observed demand
    provisioned_kb: float       # BRAM cost at the configured size
    sufficient_kb: float        # BRAM cost at the margined observed size
    mean: Optional[float] = None        # time-weighted mean (recorder only)
    bands: Optional[List[float]] = None  # time-in-band (recorder only)
    detail: Dict[str, int] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        return self.peak / self.provisioned if self.provisioned else 0.0

    @property
    def wasted_kb(self) -> float:
        """Provisioned minus sufficient cost; negative = under-provisioned
        relative to the sizing policy's margin."""
        return self.provisioned_kb - self.sufficient_kb


@dataclass(frozen=True)
class PortOccupancy:
    """One per-port occupancy/drop row (the ``--drops`` sizing view)."""

    switch: str
    port_id: int
    queue_peak: int
    queue_depth: int
    buffer_peak: int
    pool_slots: int
    tail_drops: int
    gate_drops: int
    pool_drops: int
    preemptions: int
    queue_mean: Optional[float] = None   # busiest queue, time-weighted
    buffer_mean: Optional[float] = None
    queue_bands: Optional[List[float]] = None

    @property
    def label(self) -> str:
        return f"{self.switch}.p{self.port_id}"


@dataclass
class HeadroomReport:
    """Observed-vs-provisioned accounting for one scenario run."""

    structures: List[StructureHeadroom]
    ports: List[PortOccupancy]
    observed: ObservedDemand             # network-wide peak demand
    cheapest_config: SwitchConfig        # sufficient config at max port count
    sufficient: Dict[str, SwitchConfig]  # per-switch sufficient configs
    provisioned_kb: float                # network total at configured sizes
    sufficient_kb: float                 # network total at sufficient sizes
    timeweighted: bool                   # recorder attached?
    duration_ns: Optional[int] = None    # probe-covered span (recorder only)

    @property
    def wasted_kb(self) -> float:
        return self.provisioned_kb - self.sufficient_kb

    @property
    def cheapest_kb(self) -> float:
        """BRAM cost of one switch at the cheapest sufficient config."""
        return self.cheapest_config.total_bram_kb

    def switch_structures(self, switch: str) -> List[StructureHeadroom]:
        return [s for s in self.structures if s.switch == switch]

    def utilization_digest(self) -> Dict[str, float]:
        """Worst per-structure utilization across switches (slug-keyed)."""
        digest: Dict[str, float] = {}
        for entry in self.structures:
            slug = STRUCTURE_SLUGS.get(entry.structure, entry.structure)
            current = digest.get(slug)
            if current is None or entry.utilization > current:
                digest[slug] = entry.utilization
        return {slug: round(value, 4) for slug, value in sorted(digest.items())}

    # --------------------------------------------------------------- export

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (the ``result_summary`` section)."""
        data: Dict[str, Any] = {
            "provisioned_bram_kb": round(self.provisioned_kb, 3),
            "sufficient_bram_kb": round(self.sufficient_kb, 3),
            "wasted_bram_kb": round(self.wasted_kb, 3),
            "utilization": self.utilization_digest(),
            "timeweighted": self.timeweighted,
            "observed": {
                "queue_depth": self.observed.queue_depth,
                "buffer_slots": self.observed.buffer_slots,
                "unicast": self.observed.unicast,
                "multicast": self.observed.multicast,
                "classification": self.observed.classification,
                "meters": self.observed.meters,
                "gate_entries": self.observed.gate_entries,
                "cbs_map": self.observed.cbs_map,
                "cbs": self.observed.cbs,
            },
            "cheapest_config": self.cheapest_config.to_dict(),
            "cheapest_bram_kb": round(self.cheapest_kb, 3),
            "structures": [],
            "ports": [],
        }
        if self.duration_ns is not None:
            data["duration_ns"] = self.duration_ns
        for entry in self.structures:
            row: Dict[str, Any] = {
                "switch": entry.switch,
                "structure": entry.structure,
                "provisioned": entry.provisioned,
                "peak": entry.peak,
                "utilization": round(entry.utilization, 4),
                "provisioned_kb": round(entry.provisioned_kb, 3),
                "sufficient_kb": round(entry.sufficient_kb, 3),
                "wasted_kb": round(entry.wasted_kb, 3),
            }
            if entry.mean is not None:
                row["mean"] = round(entry.mean, 3)
            if entry.bands is not None:
                row["bands"] = {
                    label: round(fraction, 4)
                    for label, fraction in zip(BAND_LABELS, entry.bands)
                }
            if entry.detail:
                row["detail"] = dict(entry.detail)
            data["structures"].append(row)
        for port in self.ports:
            port_row: Dict[str, Any] = {
                "port": port.label,
                "queue_peak": port.queue_peak,
                "queue_depth": port.queue_depth,
                "buffer_peak": port.buffer_peak,
                "pool_slots": port.pool_slots,
                "tail_drops": port.tail_drops,
                "gate_drops": port.gate_drops,
                "pool_drops": port.pool_drops,
                "preemptions": port.preemptions,
            }
            if port.queue_mean is not None:
                port_row["queue_mean"] = round(port.queue_mean, 3)
            if port.buffer_mean is not None:
                port_row["buffer_mean"] = round(port.buffer_mean, 3)
            if port.queue_bands is not None:
                port_row["queue_bands"] = {
                    label: round(fraction, 4)
                    for label, fraction in zip(BAND_LABELS, port.queue_bands)
                }
            data["ports"].append(port_row)
        return data

    def to_csv(self) -> str:
        """Per-structure rows as CSV (``repro headroom --csv``)."""
        lines = [
            "switch,structure,provisioned,peak,utilization,mean,"
            "provisioned_kb,sufficient_kb,wasted_kb"
        ]
        for entry in self.structures:
            mean = "" if entry.mean is None else f"{entry.mean:.3f}"
            lines.append(
                f"{entry.switch},{entry.structure},{entry.provisioned},"
                f"{entry.peak},{entry.utilization:.4f},{mean},"
                f"{entry.provisioned_kb:.3f},{entry.sufficient_kb:.3f},"
                f"{entry.wasted_kb:.3f}"
            )
        return "\n".join(lines) + "\n"

    def publish(self, registry: Any) -> None:
        """Export the report as gauges into a ``MetricsRegistry``.

        Feeds the existing Prometheus/CSV timeseries layer: utilization and
        wasted Kb per (switch, structure), network BRAM totals, and -- when
        the recorder ran -- time-weighted per-port occupancy means.
        """
        utilization = registry.gauge(
            "headroom_utilization",
            help="Peak observed demand over provisioned size",
        )
        wasted = registry.gauge(
            "headroom_wasted_kb",
            help="Provisioned minus sufficient BRAM Kb",
        )
        for entry in self.structures:
            slug = STRUCTURE_SLUGS.get(entry.structure, entry.structure)
            labels = {"switch": entry.switch, "structure": slug}
            utilization.set(round(entry.utilization, 4), **labels)
            wasted.set(round(entry.wasted_kb, 3), **labels)
        registry.gauge(
            "headroom_provisioned_bram_kb",
            help="Network total BRAM Kb at configured sizes",
        ).set(round(self.provisioned_kb, 3))
        registry.gauge(
            "headroom_sufficient_bram_kb",
            help="Network total BRAM Kb at margined observed sizes",
        ).set(round(self.sufficient_kb, 3))
        if self.timeweighted:
            queue_mean = registry.gauge(
                "headroom_queue_occupancy_mean",
                help="Time-weighted mean occupancy of a port's busiest queue",
            )
            buffer_mean = registry.gauge(
                "headroom_buffer_occupancy_mean",
                help="Time-weighted mean buffer-pool occupancy",
            )
            for port in self.ports:
                labels = {"switch": port.switch, "port": port.port_id}
                if port.queue_mean is not None:
                    queue_mean.set(round(port.queue_mean, 3), **labels)
                if port.buffer_mean is not None:
                    buffer_mean.set(round(port.buffer_mean, 3), **labels)


# -------------------------------------------------------------- the builder


def _aggregate_bands(probes: List[OccupancyProbe]) -> Optional[List[float]]:
    totals = [0] * len(BAND_LABELS)
    for probe in probes:
        for index, value in enumerate(probe.band_ns):
            totals[index] += value
    grand = sum(totals)
    if not grand:
        return None
    return [t / grand for t in totals]


def _switch_demand(switch: Any) -> ObservedDemand:
    """Peak demand one switch saw, from plain (deterministic) run state."""
    config = switch.config
    fill = switch.table_fill()
    queue_peak = max(
        (q.stats.high_water for port in switch.ports for q in port.queues),
        default=0,
    )
    if getattr(switch, "shared_buffers", False) and switch.ports:
        # One pool backs all ports; a sufficient config deployed the same
        # way needs buffer_num >= ceil(peak / port_num) per port.
        shared_peak = switch.ports[0].pool.stats.high_water
        buffer_peak = -(-shared_peak // config.port_num)
    else:
        buffer_peak = max(
            (port.pool.stats.high_water for port in switch.ports), default=0
        )
    return ObservedDemand(
        queue_depth=queue_peak,
        buffer_slots=buffer_peak,
        unicast=fill["unicast"],
        multicast=fill.get("multicast", 0),
        classification=fill["classification"],
        meters=fill["meter"],
        gate_entries=fill["gate"],
        cbs_map=fill["cbs_map"],
        cbs=fill["cbs"],
    )


def _merge_demand(demands: List[ObservedDemand]) -> ObservedDemand:
    if not demands:
        return ObservedDemand()
    return ObservedDemand(
        queue_depth=max(d.queue_depth for d in demands),
        buffer_slots=max(d.buffer_slots for d in demands),
        unicast=max(d.unicast for d in demands),
        multicast=max(d.multicast for d in demands),
        classification=max(d.classification for d in demands),
        meters=max(d.meters for d in demands),
        gate_entries=max(d.gate_entries for d in demands),
        cbs_map=max(d.cbs_map for d in demands),
        cbs=max(d.cbs for d in demands),
    )


def _kb_by_row(config: SwitchConfig) -> Dict[str, float]:
    return {row.resource: row.kb for row in config.resource_report().rows}


def build_headroom_report(
    result: Any,
    recorder: Optional[HeadroomRecorder] = None,
    queue_depth_margin: float = 1.5,
    depth_round_to: int = 4,
) -> HeadroomReport:
    """Join a :class:`ScenarioResult`'s demand evidence into a report.

    Works without a recorder: peaks and fills come from queue/pool stats
    and table lengths, which are exact.  A recorder adds the time-weighted
    means and occupancy-band histograms.  *result* only needs a
    ``switches`` mapping of name -> :class:`~repro.switch.device.TsnSwitch`
    (duck-typed to keep this module import-light).
    """
    structures: List[StructureHeadroom] = []
    ports: List[PortOccupancy] = []
    sufficient: Dict[str, SwitchConfig] = {}
    demands: List[ObservedDemand] = []
    provisioned_total = 0.0
    sufficient_total = 0.0

    for name, switch in result.switches.items():
        config = switch.config
        demand = _switch_demand(switch)
        demands.append(demand)
        suff = sufficient_config(
            config, demand,
            queue_depth_margin=queue_depth_margin,
            depth_round_to=depth_round_to,
        )
        sufficient[name] = suff
        prov_kb = _kb_by_row(config)
        suff_kb = _kb_by_row(suff)
        provisioned_total += sum(prov_kb.values())
        sufficient_total += sum(suff_kb.values())

        fill = switch.table_fill()
        shared = bool(getattr(switch, "shared_buffers", False))
        pool_slots = (
            switch.ports[0].pool.slots if shared and switch.ports
            else config.buffer_num
        )
        pool_peak = max(
            (port.pool.stats.high_water for port in switch.ports), default=0
        )
        queue_probes: List[OccupancyProbe] = []
        pool_probes: List[OccupancyProbe] = []
        if recorder is not None:
            seen_pools = set()
            for port in switch.ports:
                probes = recorder.port_probes(name, port.port_id)
                if probes is None:
                    continue
                queue_probes.extend(probes.queues)
                if id(probes.pool) not in seen_pools:
                    seen_pools.add(id(probes.pool))
                    pool_probes.append(probes.pool)

        rows: List[Tuple[str, int, int, Dict[str, int]]] = [
            ("Switch Tbl", config.unicast_size, fill["unicast"], {}),
        ]
        if config.multicast_size > 0:
            rows.append(
                ("Multicast Tbl", config.multicast_size,
                 fill.get("multicast", 0), {})
            )
        rows.extend(
            [
                ("Class. Tbl", config.class_size, fill["classification"], {}),
                ("Meter Tbl", config.meter_size, fill["meter"],
                 {"in_use": switch.meters_in_use()}),
                ("Gate Tbl", config.gate_size, fill["gate"], {}),
                ("CBS Tbl", max(config.cbs_map_size, config.cbs_size),
                 max(fill["cbs_map"], fill["cbs"]), {}),
                ("Queues", config.queue_depth, demand.queue_depth, {}),
                ("Buffers", pool_slots, pool_peak, {}),
            ]
        )
        for structure, provisioned, peak, detail in rows:
            mean: Optional[float] = None
            bands: Optional[List[float]] = None
            if structure == "Queues" and queue_probes:
                mean = max(p.mean() for p in queue_probes)
                bands = _aggregate_bands(queue_probes)
            elif structure == "Buffers" and pool_probes:
                mean = max(p.mean() for p in pool_probes)
                bands = _aggregate_bands(pool_probes)
            structures.append(
                StructureHeadroom(
                    switch=name,
                    structure=structure,
                    provisioned=provisioned,
                    peak=peak,
                    provisioned_kb=prov_kb.get(structure, 0.0),
                    sufficient_kb=suff_kb.get(structure, 0.0),
                    mean=mean,
                    bands=bands,
                    detail=detail,
                )
            )

        for port in switch.ports:
            probes = (
                recorder.port_probes(name, port.port_id)
                if recorder is not None
                else None
            )
            queue_mean = buffer_mean = None
            queue_bands = None
            if probes is not None:
                queue_mean = max(
                    (p.mean() for p in probes.queues), default=0.0
                )
                buffer_mean = probes.pool.mean()
                queue_bands = _aggregate_bands(list(probes.queues))
            ports.append(
                PortOccupancy(
                    switch=name,
                    port_id=port.port_id,
                    queue_peak=max(
                        (q.stats.high_water for q in port.queues), default=0
                    ),
                    queue_depth=config.queue_depth,
                    buffer_peak=port.pool.stats.high_water,
                    pool_slots=port.pool.slots,
                    tail_drops=sum(q.stats.tail_drops for q in port.queues),
                    gate_drops=sum(q.stats.gate_drops for q in port.queues),
                    pool_drops=port.pool.stats.exhaustion_drops,
                    preemptions=port.preemptions,
                    queue_mean=queue_mean,
                    buffer_mean=buffer_mean,
                    queue_bands=queue_bands,
                )
            )

    network_demand = _merge_demand(demands)
    switches = list(result.switches.values())
    if switches:
        base = max(switches, key=lambda s: s.config.port_num).config
        base = base.with_updates(name="network")
    else:
        base = SwitchConfig(name="network")
    cheapest = sufficient_config(
        base, network_demand,
        queue_depth_margin=queue_depth_margin,
        depth_round_to=depth_round_to,
    )
    return HeadroomReport(
        structures=structures,
        ports=ports,
        observed=network_demand,
        cheapest_config=cheapest,
        sufficient=sufficient,
        provisioned_kb=provisioned_total,
        sufficient_kb=sufficient_total,
        timeweighted=recorder is not None,
        duration_ns=recorder.end_ns if recorder is not None else None,
    )
