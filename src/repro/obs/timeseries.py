"""Metrics over time: ring-buffered sampling and Prometheus/CSV export.

A final :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` collapses a
whole run into one point; long heavy-traffic runs need *trends* -- queue
depth ramping toward a tail-drop, buffer occupancy breathing with the CQF
slot cadence, violation rate under a load step.  This module adds:

* :class:`RingBuffer` -- fixed-capacity sample storage.  Memory is bounded
  regardless of run length; once full, the oldest samples are overwritten
  and counted (``overwritten``), so a 10-second run and a 10-hour run cost
  the same RAM.
* :class:`TimeSeriesSampler` -- a simulation process that snapshots every
  registry series each ``interval_ns`` into one ring per (metric, label
  set): counters sample their running total, gauges their level,
  histograms their observation count.
* :func:`prometheus_exposition` -- the registry in Prometheus text
  exposition format (version 0.0.4): ``# HELP``/``# TYPE`` headers,
  escaped label values, *cumulative* histogram buckets with the mandatory
  ``+Inf`` bound, plus ``_high_water`` companions for gauges.

The sampler costs nothing when not constructed; sampling cost scales with
series count, not traffic rate.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelKey,
    MetricsRegistry,
)
from repro.sim.kernel import Simulator

__all__ = [
    "RingBuffer",
    "TimeSeriesSampler",
    "prometheus_exposition",
]

DEFAULT_CAPACITY = 1024


class RingBuffer:
    """Fixed-capacity FIFO that overwrites its oldest entries when full."""

    __slots__ = ("capacity", "_data", "_start", "overwritten")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"ring capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._data: List[Any] = []
        self._start = 0
        self.overwritten = 0

    def append(self, item: Any) -> None:
        if len(self._data) < self.capacity:
            self._data.append(item)
        else:
            self._data[self._start] = item
            self._start = (self._start + 1) % self.capacity
            self.overwritten += 1

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        """Oldest to newest."""
        for index in range(len(self._data)):
            yield self._data[(self._start + index) % len(self._data)]

    def items(self) -> List[Any]:
        return list(self)

    @property
    def latest(self) -> Optional[Any]:
        if not self._data:
            return None
        return self._data[(self._start - 1) % len(self._data)]


def _sample_value(instrument: Any, series: Any) -> float:
    if isinstance(instrument, Counter):
        return series.value
    if isinstance(instrument, Gauge):
        return series.value
    if isinstance(instrument, Histogram):
        return series.count
    raise ConfigurationError(
        f"cannot sample instrument kind {instrument.kind!r}"
    )


class TimeSeriesSampler:
    """Periodic registry snapshots into per-series rings.

    Attach before the run and :meth:`start` it; each tick walks every
    registered series and appends ``(time_ns, value)`` to that series'
    ring.  Series appearing mid-run (label sets bind lazily) simply start
    sampling at the next tick.  The self-rescheduling tick chain is cut off
    by the kernel's ``run(until=...)`` horizon, so no explicit stop is
    needed.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        sim: Simulator,
        interval_ns: int,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if interval_ns <= 0:
            raise ConfigurationError(
                f"sample interval must be positive, got {interval_ns}"
            )
        self.registry = registry
        self._sim = sim
        self.interval_ns = interval_ns
        self.capacity = capacity
        #: (metric name, label key) -> ring of (time_ns, value).
        self.rings: Dict[Tuple[str, LabelKey], RingBuffer] = {}
        self.samples_taken = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise ConfigurationError("sampler already started")
        self._started = True
        self._sim.post(self.interval_ns, self._tick)

    def _tick(self) -> None:
        self.sample()
        self._sim.post(self.interval_ns, self._tick)

    def sample(self) -> None:
        """Record one sample of every series right now."""
        now = self._sim.now
        for instrument in self.registry:
            for label_key, series in instrument.series():
                ring = self.rings.get((instrument.name, label_key))
                if ring is None:
                    ring = self.rings[(instrument.name, label_key)] = (
                        RingBuffer(self.capacity)
                    )
                ring.append((now, _sample_value(instrument, series)))
        self.samples_taken += 1

    # ---------------------------------------------------------------- export

    def series(self) -> Dict[str, Dict[LabelKey, List[Tuple[int, float]]]]:
        """metric name -> label key -> [(time_ns, value)] oldest-first."""
        result: Dict[str, Dict[LabelKey, List[Tuple[int, float]]]] = {}
        for (name, label_key), ring in sorted(self.rings.items()):
            result.setdefault(name, {})[label_key] = ring.items()
        return result

    def to_csv(self) -> str:
        """Long-format CSV: ``time_ns,metric,labels,value`` per sample.

        Labels render as ``k=v`` pairs joined with ``;`` and the cell is
        quoted, so spreadsheet tooling splits on the three real commas.
        """
        lines = ["time_ns,metric,labels,value"]
        for (name, label_key), ring in sorted(self.rings.items()):
            labels = ";".join(f"{k}={v}" for k, v in label_key)
            for time_ns, value in ring:
                rendered = (
                    f"{value:g}" if isinstance(value, float) else str(value)
                )
                lines.append(f'{time_ns},{name},"{labels}",{rendered}')
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------- Prometheus

def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(label_key: LabelKey, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in label_key
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _render_value(value: Any) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    Counters keep their registered names (the repo already uses ``_total``
    suffixes where conventional); gauges additionally expose their
    high-water marks as ``<name>_high_water``; histograms emit cumulative
    ``_bucket``/``_sum``/``_count`` series with the mandatory ``+Inf``
    bound.
    """
    lines: List[str] = []
    for instrument in registry:
        name = instrument.name
        if instrument.help:
            lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Counter):
            for label_key, series in instrument.series():
                lines.append(
                    f"{name}{_render_labels(label_key)} "
                    f"{_render_value(series.value)}"
                )
        elif isinstance(instrument, Gauge):
            high_water_lines: List[str] = []
            for label_key, series in instrument.series():
                lines.append(
                    f"{name}{_render_labels(label_key)} "
                    f"{_render_value(series.value)}"
                )
                high_water_lines.append(
                    f"{name}_high_water{_render_labels(label_key)} "
                    f"{_render_value(series.high_water)}"
                )
            if high_water_lines:
                lines.append(
                    f"# TYPE {name}_high_water gauge"
                )
                lines.extend(high_water_lines)
        elif isinstance(instrument, Histogram):
            for label_key, series in instrument.series():
                cumulative = 0
                for bound, bucket_count in zip(
                    series.bounds, series.bucket_counts
                ):
                    cumulative += bucket_count
                    le = f'le="{bound}"'
                    lines.append(
                        f"{name}_bucket{_render_labels(label_key, le)} "
                        f"{cumulative}"
                    )
                cumulative += series.bucket_counts[-1]
                inf = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{_render_labels(label_key, inf)} "
                    f"{cumulative}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(label_key)} "
                    f"{_render_value(series.sum)}"
                )
                lines.append(
                    f"{name}_count{_render_labels(label_key)} "
                    f"{series.count}"
                )
    return "\n".join(lines) + "\n"
