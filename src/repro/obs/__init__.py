"""Unified observability layer: metrics, profiling, trace export.

Everything the evaluation needs to *see inside* a run lives here:

* :class:`MetricsRegistry` with labeled :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments (:mod:`repro.obs.metrics`);
* the opt-in wall-clock :class:`WallClockProfiler` the kernel hooks
  (:mod:`repro.obs.profiler`);
* pre-bound dataplane instruments (:mod:`repro.obs.instruments`);
* Chrome trace-event / JSONL exporters (:mod:`repro.obs.chrome_trace`);
* frame-journey span recording (:mod:`repro.obs.flowspans`);
* resource-headroom probes and observed-vs-provisioned BRAM accounting
  (:mod:`repro.obs.headroom`);
* per-flow SLO monitors (:mod:`repro.obs.slo`);
* ring-buffered time series + Prometheus/CSV export
  (:mod:`repro.obs.timeseries`);
* the flight recorder black box for post-mortems
  (:mod:`repro.obs.flight`);
* campaign-scale telemetry -- run ledger, worker heartbeats, straggler
  flagging, live status rendering (:mod:`repro.obs.campaign`).

See ``docs/observability.md`` for the metric catalogue and exporter
formats, and ``docs/campaigns.md`` for the sweep-level artifacts.
"""

from .campaign import (
    HeartbeatWriter,
    LedgerWriter,
    WorkerTelemetry,
    flag_stragglers,
    read_ledger,
    read_status,
    render_status,
    robust_z_scores,
    sweep_spec_hash,
    telemetry_summary,
)
from .chrome_trace import (
    chrome_trace_events,
    gate_span_events,
    instant_events,
    trace_to_jsonl,
    write_chrome_trace,
)
from .flowspans import FlowSpanRecorder, FrameJourney, flow_stats
from .headroom import (
    HeadroomRecorder,
    HeadroomReport,
    OccupancyProbe,
    PortHeadroomProbes,
    build_headroom_report,
)
from .instruments import PortInstruments, SwitchInstruments
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from .flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder
from .profiler import NULL_PROFILER, NullProfiler, WallClockProfiler
from .slo import SloMonitor, SloPolicy, SloReport, SloSpec
from .timeseries import RingBuffer, TimeSeriesSampler, prometheus_exposition

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "SwitchInstruments",
    "PortInstruments",
    "WallClockProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "chrome_trace_events",
    "gate_span_events",
    "instant_events",
    "write_chrome_trace",
    "trace_to_jsonl",
    "FlowSpanRecorder",
    "FrameJourney",
    "flow_stats",
    "HeadroomRecorder",
    "HeadroomReport",
    "OccupancyProbe",
    "PortHeadroomProbes",
    "build_headroom_report",
    "SloSpec",
    "SloPolicy",
    "SloMonitor",
    "SloReport",
    "RingBuffer",
    "TimeSeriesSampler",
    "prometheus_exposition",
    "FlightRecorder",
    "DEFAULT_FLIGHT_CAPACITY",
    "LedgerWriter",
    "HeartbeatWriter",
    "WorkerTelemetry",
    "sweep_spec_hash",
    "read_ledger",
    "read_status",
    "render_status",
    "robust_z_scores",
    "flag_stragglers",
    "telemetry_summary",
]
