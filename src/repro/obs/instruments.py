"""Pre-bound dataplane instruments: the switch's view of the registry.

The dataplane fires millions of events per simulated second, so it must not
pay registry/label resolution per frame.  :class:`SwitchInstruments` does
all of that once at device-build time -- one metric name space shared by
every switch, one bound series per (switch, port, queue) -- and hands each
:class:`~repro.switch.port.EgressPort` a :class:`PortInstruments` whose
methods only bump plain integer fields.

Metric catalogue (labels in parentheses):

===========================  =========  ====================================
``frames_total``             counter    (switch, event: received/forwarded/
                                        transmitted)
``drops_total``              counter    (switch, reason)
``meter_decisions_total``    counter    (switch, decision: conform/violate)
``gate_flips_total``         counter    (switch, port, direction: in/out)
``queue_depth``              gauge      (switch, port, queue) + high-water
``buffer_in_use``            gauge      (switch, port) + high-water
``queue_residence_ns``       histogram  (switch, port, queue), log-ns buckets
===========================  =========  ====================================
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .metrics import (
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
    MetricsRegistry,
)

__all__ = ["SwitchInstruments", "PortInstruments"]


class PortInstruments:
    """Bound series for one egress port; every method is O(1) field math."""

    __slots__ = (
        "_queue_depth",
        "_residence",
        "_buffer",
        "_transmitted",
        "_gate_flips",
        "_drops",
    )

    def __init__(
        self,
        queue_depth: Dict[int, GaugeSeries],
        residence: Dict[int, HistogramSeries],
        buffer_in_use: GaugeSeries,
        transmitted: CounterSeries,
        gate_flips: Dict[str, CounterSeries],
        drops: Dict[str, CounterSeries],
    ) -> None:
        self._queue_depth = queue_depth
        self._residence = residence
        self._buffer = buffer_in_use
        self._transmitted = transmitted
        self._gate_flips = gate_flips
        self._drops = drops

    def on_enqueue(self, queue_id: int, occupancy: int) -> None:
        series = self._queue_depth.get(queue_id)
        if series is not None:
            series.set(occupancy)

    def on_dequeue(self, queue_id: int, occupancy: int,
                   residence_ns: int) -> None:
        series = self._queue_depth.get(queue_id)
        if series is not None:
            series.set(occupancy)
        histogram = self._residence.get(queue_id)
        if histogram is not None:
            histogram.observe(residence_ns)

    def on_buffer(self, in_use: int) -> None:
        self._buffer.set(in_use)

    def on_transmitted(self) -> None:
        self._transmitted.inc()

    def on_gate_flip(self, direction: str) -> None:
        self._gate_flips[direction].inc()

    def on_drop(self, reason: str) -> None:
        self._drops[reason].inc()


class SwitchInstruments:
    """One switch's bound instrument set over a shared registry."""

    #: Drop reasons the egress path can produce (pre-bound per port).
    PORT_DROP_REASONS = ("gate", "tail", "no_buffer")

    def __init__(self, registry: MetricsRegistry, switch: str) -> None:
        self.registry = registry
        self.switch = switch
        frames = registry.counter(
            "frames_total", help="Frames by lifecycle event"
        )
        self._received = frames.labels(switch=switch, event="received")
        self._forwarded = frames.labels(switch=switch, event="forwarded")
        self._transmitted = frames.labels(switch=switch, event="transmitted")
        self._drops = registry.counter(
            "drops_total", help="Dropped frames by reason"
        )
        self._drop_series: Dict[str, CounterSeries] = {}
        meter = registry.counter(
            "meter_decisions_total", help="Policer conform/violate decisions"
        )
        self._conform = meter.labels(switch=switch, decision="conform")
        self._violate = meter.labels(switch=switch, decision="violate")
        self._gate_flips = registry.counter(
            "gate_flips_total", help="GCL entry advances per port"
        )
        self._queue_depth = registry.gauge(
            "queue_depth", help="Instantaneous queue occupancy (descriptors)"
        )
        self._buffer_in_use = registry.gauge(
            "buffer_in_use", help="Buffer-pool slots in use"
        )
        self._residence = registry.histogram(
            "queue_residence_ns",
            help="Enqueue-to-dequeue residence time per queue",
        )

    # --------------------------------------------------------- switch level

    def on_received(self) -> None:
        self._received.inc()

    def on_forwarded(self) -> None:
        self._forwarded.inc()

    def on_meter(self, conformed: bool) -> None:
        (self._conform if conformed else self._violate).inc()

    def _drop(self, reason: str) -> CounterSeries:
        series = self._drop_series.get(reason)
        if series is None:
            series = self._drop_series[reason] = self._drops.labels(
                switch=self.switch, reason=reason
            )
        return series

    def on_drop(self, reason: str) -> None:
        self._drop(reason).inc()

    # ----------------------------------------------------------- port level

    def for_port(self, port_id: int, queue_ids: Iterable[int]) -> PortInstruments:
        """Bind every per-queue series of one port up front."""
        queue_ids = tuple(queue_ids)
        labels = {"switch": self.switch, "port": port_id}
        return PortInstruments(
            queue_depth={
                queue_id: self._queue_depth.labels(**labels, queue=queue_id)
                for queue_id in queue_ids
            },
            residence={
                queue_id: self._residence.labels(**labels, queue=queue_id)
                for queue_id in queue_ids
            },
            buffer_in_use=self._buffer_in_use.labels(**labels),
            transmitted=self._transmitted,
            gate_flips={
                direction: self._gate_flips.labels(**labels,
                                                   direction=direction)
                for direction in ("in", "out")
            },
            drops={
                reason: self._drop(reason)
                for reason in self.PORT_DROP_REASONS
            },
        )
