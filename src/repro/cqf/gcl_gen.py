"""Static GCL generation for Cyclic Queuing and Forwarding (802.1Qch).

The paper's evaluation "put[s] a static configuration on the In/Out Gate
Control list to implement [the] Cyclic Queuing and Forwarding model (CQF),
where two TSN queues perform enqueue and dequeue operations in a cyclic
manner" -- which is why ``gate_size = 2`` suffices in Table III.

:func:`cqf_gcl_entries` produces exactly that two-entry configuration for a
queue pair (A, B):

=========  ====================  ====================
slot       in-gates open         out-gates open
=========  ====================  ====================
even       A  (+ all non-TS)     B  (+ all non-TS)
odd        B  (+ all non-TS)     A  (+ all non-TS)
=========  ====================  ====================

So arrivals during a slot gather in one queue while the previous slot's
gathered packets drain from the other; the roles swap each slot boundary.
Non-TS queues stay open in every entry -- RC/BE traffic is regulated by
priority and CBS, not by gates.

Two sibling shaper modes share the machinery:

* **CSQF** (:func:`csqf_gcl_entries`): the cycle-specified variant rotates
  *three* queues -- in-gate entry ``i`` gathers into ``queues[i]`` while
  out-gate entry ``i`` drains ``queues[(i + 1) % 3]``, so a queue gathered
  during slot ``s`` drains during slot ``s + 2``, buying one slot of
  tolerance per hop at the cost of one more gated queue (``gate_size = 3``).
* **Multi-CQF** (:func:`multi_cqf_gcl_entries`): two independent CQF
  systems on the same port, each rotating its own queue group at its own
  slot length.  The merged GCL covers one hyper-cycle
  (``2 * slot2``, with ``slot2`` a multiple of the base slot) in uniform
  base-slot segments.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.errors import SchedulingError
from repro.switch.gates import CqfGroup, CqfPair
from repro.switch.tables import GateEntry

__all__ = [
    "cqf_gcl_entries",
    "cqf_port_program",
    "csqf_gcl_entries",
    "csqf_port_program",
    "multi_cqf_gcl_entries",
    "multi_cqf_port_program",
    "multi_cqf_gate_entry_count",
    "DEFAULT_TS_QUEUE_PAIR",
    "DEFAULT_TS_QUEUE_TRIPLE",
    "DEFAULT_MULTI_CQF_GROUPS",
]

#: The evaluation maps TS traffic to the two highest-priority queues.
DEFAULT_TS_QUEUE_PAIR: Tuple[int, int] = (6, 7)

#: CSQF claims one more high-priority queue for its three-way rotation.
DEFAULT_TS_QUEUE_TRIPLE: Tuple[int, int, int] = (5, 6, 7)

#: Multi-CQF queue groups: (base-slot system, long-slot system).
DEFAULT_MULTI_CQF_GROUPS: Tuple[Tuple[int, int], ...] = ((6, 7), (4, 5))


def _mask_of(queues: Sequence[int]) -> int:
    mask = 0
    for queue in queues:
        if not 0 <= queue <= 7:
            raise SchedulingError(f"queue id {queue} outside 0..7")
        mask |= 1 << queue
    return mask


def cqf_gcl_entries(
    slot_ns: int,
    pair: Tuple[int, int] = DEFAULT_TS_QUEUE_PAIR,
    queue_num: int = 8,
) -> Tuple[List[GateEntry], List[GateEntry]]:
    """Build the (in_entries, out_entries) two-entry CQF lists.

    Returns lists ready for :meth:`TsnSwitch.program_gcls`.
    """
    if slot_ns <= 0:
        raise SchedulingError(f"slot size must be positive, got {slot_ns}")
    queue_a, queue_b = pair
    if queue_a == queue_b:
        raise SchedulingError("CQF pair must use two distinct queues")
    for queue in pair:
        if queue >= queue_num:
            raise SchedulingError(
                f"CQF queue {queue} outside the {queue_num} configured queues"
            )
    non_ts = _mask_of(
        [q for q in range(queue_num) if q not in pair]
    )
    open_a = non_ts | (1 << queue_a)
    open_b = non_ts | (1 << queue_b)
    in_entries = [GateEntry(open_a, slot_ns), GateEntry(open_b, slot_ns)]
    out_entries = [GateEntry(open_b, slot_ns), GateEntry(open_a, slot_ns)]
    return in_entries, out_entries


def cqf_port_program(
    slot_ns: int,
    pair: Tuple[int, int] = DEFAULT_TS_QUEUE_PAIR,
    queue_num: int = 8,
) -> Tuple[List[GateEntry], List[GateEntry], List[CqfPair]]:
    """Everything ``program_gcls`` needs for one CQF port.

    >>> in_e, out_e, pairs = cqf_port_program(slot_ns=65_000)
    >>> switch.program_gcls(0, in_e, out_e, pairs)      # doctest: +SKIP
    """
    in_entries, out_entries = cqf_gcl_entries(slot_ns, pair, queue_num)
    return in_entries, out_entries, [CqfPair(*pair)]


def _check_group(
    queues: Sequence[int], queue_num: int, label: str
) -> None:
    if len(set(queues)) != len(queues):
        raise SchedulingError(
            f"{label} must use distinct queues, got {tuple(queues)}"
        )
    for queue in queues:
        if queue >= queue_num:
            raise SchedulingError(
                f"{label} queue {queue} outside the {queue_num} "
                f"configured queues"
            )


def csqf_gcl_entries(
    slot_ns: int,
    triple: Tuple[int, int, int] = DEFAULT_TS_QUEUE_TRIPLE,
    queue_num: int = 8,
) -> Tuple[List[GateEntry], List[GateEntry]]:
    """Build the (in_entries, out_entries) three-entry CSQF lists.

    Entry ``i`` gathers into ``triple[i]`` and drains
    ``triple[(i + 1) % 3]``; with a two-queue group the same rotation
    degenerates to classic CQF, which is the property the gate tests pin.
    """
    if slot_ns <= 0:
        raise SchedulingError(f"slot size must be positive, got {slot_ns}")
    if len(triple) != 3:
        raise SchedulingError(
            f"CSQF needs exactly three queues, got {tuple(triple)}"
        )
    _check_group(triple, queue_num, "CSQF")
    non_ts = _mask_of([q for q in range(queue_num) if q not in triple])
    in_entries = [
        GateEntry(non_ts | (1 << triple[i]), slot_ns) for i in range(3)
    ]
    out_entries = [
        GateEntry(non_ts | (1 << triple[(i + 1) % 3]), slot_ns)
        for i in range(3)
    ]
    return in_entries, out_entries


def csqf_port_program(
    slot_ns: int,
    triple: Tuple[int, int, int] = DEFAULT_TS_QUEUE_TRIPLE,
    queue_num: int = 8,
) -> Tuple[List[GateEntry], List[GateEntry], List[CqfGroup]]:
    """Everything ``program_gcls`` needs for one CSQF port."""
    in_entries, out_entries = csqf_gcl_entries(slot_ns, triple, queue_num)
    return in_entries, out_entries, [CqfGroup(*triple)]


def multi_cqf_gate_entry_count(slot_ns: int, slot2_ns: int) -> int:
    """Entries per GCL of a Multi-CQF port (drives ``gate_size`` sizing)."""
    if slot_ns <= 0:
        raise SchedulingError(f"slot size must be positive, got {slot_ns}")
    if slot2_ns <= 0 or slot2_ns % slot_ns:
        raise SchedulingError(
            f"multi_cqf slot2 ({slot2_ns}ns) must be a positive multiple "
            f"of the base slot ({slot_ns}ns)"
        )
    # Hyper-cycle = lcm(2*slot, 2*slot2) = 2*slot2, split into base slots.
    return 2 * (slot2_ns // slot_ns)


def multi_cqf_gcl_entries(
    slot_ns: int,
    slot2_ns: int,
    groups: Tuple[Tuple[int, int], ...] = DEFAULT_MULTI_CQF_GROUPS,
    queue_num: int = 8,
) -> Tuple[List[GateEntry], List[GateEntry]]:
    """Merged (in_entries, out_entries) for two CQF systems on one port.

    ``groups[0]`` rotates every ``slot_ns``, ``groups[1]`` every
    ``slot2_ns``; the merged lists cover one hyper-cycle (``2 * slot2``)
    in uniform base-slot segments, each opening the gathering member of
    every group on the in side and the draining member on the out side.
    """
    entry_count = multi_cqf_gate_entry_count(slot_ns, slot2_ns)
    if len(groups) != 2:
        raise SchedulingError(
            f"multi_cqf needs exactly two queue groups, got {len(groups)}"
        )
    flat: List[int] = [q for group in groups for q in group]
    _check_group(flat, queue_num, "multi_cqf")
    for group in groups:
        if len(group) != 2:
            raise SchedulingError(
                f"multi_cqf groups must hold two queues each, "
                f"got {tuple(group)}"
            )
    non_ts = _mask_of([q for q in range(queue_num) if q not in flat])
    slots = (slot_ns, slot2_ns)
    in_entries: List[GateEntry] = []
    out_entries: List[GateEntry] = []
    for i in range(entry_count):
        t = i * slot_ns
        in_mask = non_ts
        out_mask = non_ts
        for group, system_slot in zip(groups, slots):
            phase = t // system_slot
            in_mask |= 1 << group[phase % 2]
            out_mask |= 1 << group[(phase + 1) % 2]
        in_entries.append(GateEntry(in_mask, slot_ns))
        out_entries.append(GateEntry(out_mask, slot_ns))
    return in_entries, out_entries


def multi_cqf_port_program(
    slot_ns: int,
    slot2_ns: int,
    groups: Tuple[Tuple[int, int], ...] = DEFAULT_MULTI_CQF_GROUPS,
    queue_num: int = 8,
) -> Tuple[List[GateEntry], List[GateEntry], List[CqfGroup]]:
    """Everything ``program_gcls`` needs for one Multi-CQF port.

    The returned groups are ordered (base system, long-slot system) to
    match :func:`repro.sched.partition_for_multi_cqf`'s system indices.
    """
    in_entries, out_entries = multi_cqf_gcl_entries(
        slot_ns, slot2_ns, groups, queue_num
    )
    return in_entries, out_entries, [CqfGroup(*g) for g in groups]
