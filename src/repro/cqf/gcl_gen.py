"""Static GCL generation for Cyclic Queuing and Forwarding (802.1Qch).

The paper's evaluation "put[s] a static configuration on the In/Out Gate
Control list to implement [the] Cyclic Queuing and Forwarding model (CQF),
where two TSN queues perform enqueue and dequeue operations in a cyclic
manner" -- which is why ``gate_size = 2`` suffices in Table III.

:func:`cqf_gcl_entries` produces exactly that two-entry configuration for a
queue pair (A, B):

=========  ====================  ====================
slot       in-gates open         out-gates open
=========  ====================  ====================
even       A  (+ all non-TS)     B  (+ all non-TS)
odd        B  (+ all non-TS)     A  (+ all non-TS)
=========  ====================  ====================

So arrivals during a slot gather in one queue while the previous slot's
gathered packets drain from the other; the roles swap each slot boundary.
Non-TS queues stay open in every entry -- RC/BE traffic is regulated by
priority and CBS, not by gates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.errors import SchedulingError
from repro.switch.gates import CqfPair
from repro.switch.tables import GateEntry

__all__ = ["cqf_gcl_entries", "DEFAULT_TS_QUEUE_PAIR", "cqf_port_program"]

#: The evaluation maps TS traffic to the two highest-priority queues.
DEFAULT_TS_QUEUE_PAIR: Tuple[int, int] = (6, 7)


def _mask_of(queues: Sequence[int]) -> int:
    mask = 0
    for queue in queues:
        if not 0 <= queue <= 7:
            raise SchedulingError(f"queue id {queue} outside 0..7")
        mask |= 1 << queue
    return mask


def cqf_gcl_entries(
    slot_ns: int,
    pair: Tuple[int, int] = DEFAULT_TS_QUEUE_PAIR,
    queue_num: int = 8,
) -> Tuple[List[GateEntry], List[GateEntry]]:
    """Build the (in_entries, out_entries) two-entry CQF lists.

    Returns lists ready for :meth:`TsnSwitch.program_gcls`.
    """
    if slot_ns <= 0:
        raise SchedulingError(f"slot size must be positive, got {slot_ns}")
    queue_a, queue_b = pair
    if queue_a == queue_b:
        raise SchedulingError("CQF pair must use two distinct queues")
    for queue in pair:
        if queue >= queue_num:
            raise SchedulingError(
                f"CQF queue {queue} outside the {queue_num} configured queues"
            )
    non_ts = _mask_of(
        [q for q in range(queue_num) if q not in pair]
    )
    open_a = non_ts | (1 << queue_a)
    open_b = non_ts | (1 << queue_b)
    in_entries = [GateEntry(open_a, slot_ns), GateEntry(open_b, slot_ns)]
    out_entries = [GateEntry(open_b, slot_ns), GateEntry(open_a, slot_ns)]
    return in_entries, out_entries


def cqf_port_program(
    slot_ns: int,
    pair: Tuple[int, int] = DEFAULT_TS_QUEUE_PAIR,
    queue_num: int = 8,
) -> Tuple[List[GateEntry], List[GateEntry], List[CqfPair]]:
    """Everything ``program_gcls`` needs for one CQF port.

    >>> in_e, out_e, pairs = cqf_port_program(slot_ns=65_000)
    >>> switch.program_gcls(0, in_e, out_e, pairs)      # doctest: +SKIP
    """
    in_entries, out_entries = cqf_gcl_entries(slot_ns, pair, queue_num)
    return in_entries, out_entries, [CqfPair(*pair)]
