"""Scheduling cycle and time-slot arithmetic.

Paper Section III.C(2): "The time is divided into multiple equally sized
'time slots'. ... The scheduling cycle defines a complete iteration and
equals to the least common multiple of all flow periods."

:class:`CqfSchedule` captures one network-wide slotting: the slot size, the
scheduling cycle, and the resulting slot count.  It is the shared input to
GCL generation (:mod:`repro.cqf.gcl_gen`), injection-time planning
(:mod:`repro.cqf.itp`), and the sizing guidelines
(:mod:`repro.core.sizing` -- general 802.1Qbv gate tables need one entry per
slot in the cycle; CQF compresses that to 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import SchedulingError

__all__ = ["CqfSchedule", "scheduling_cycle_ns", "slots_in_cycle"]

#: Safety limit on cycle length: pathological co-prime periods explode the
#: LCM; 10 s of cycle is far beyond any industrial schedule.
_MAX_CYCLE_NS = 10 * 10**9


def scheduling_cycle_ns(periods_ns: Iterable[int]) -> int:
    """The scheduling cycle: LCM of all flow periods (ns)."""
    cycle = 1
    seen = False
    for period in periods_ns:
        if period <= 0:
            raise SchedulingError(f"flow period must be positive, got {period}")
        cycle = math.lcm(cycle, period)
        seen = True
        if cycle > _MAX_CYCLE_NS:
            raise SchedulingError(
                f"scheduling cycle exceeds {_MAX_CYCLE_NS}ns; flow periods "
                "are pathologically co-prime"
            )
    if not seen:
        raise SchedulingError("cannot compute a cycle for zero flows")
    return cycle


def slots_in_cycle(cycle_ns: int, slot_ns: int) -> int:
    """Number of time slots per scheduling cycle; slot must divide cycle."""
    if slot_ns <= 0:
        raise SchedulingError(f"slot size must be positive, got {slot_ns}")
    if cycle_ns % slot_ns:
        raise SchedulingError(
            f"slot {slot_ns}ns does not divide scheduling cycle {cycle_ns}ns"
        )
    return cycle_ns // slot_ns


@dataclass(frozen=True)
class CqfSchedule:
    """One network-wide CQF slotting."""

    slot_ns: int
    cycle_ns: int

    def __post_init__(self) -> None:
        slots_in_cycle(self.cycle_ns, self.slot_ns)  # validates divisibility

    @property
    def slot_count(self) -> int:
        return self.cycle_ns // self.slot_ns

    @classmethod
    def for_flows(cls, periods_ns: Sequence[int], slot_ns: int) -> "CqfSchedule":
        """Slot the LCM cycle of *periods_ns* into *slot_ns* slots."""
        cycle = scheduling_cycle_ns(periods_ns)
        if cycle % slot_ns:
            raise SchedulingError(
                f"slot {slot_ns}ns does not divide the flows' scheduling "
                f"cycle {cycle}ns -- pick a slot that divides every period"
            )
        return cls(slot_ns, cycle)

    def slot_of(self, time_ns: int) -> int:
        """Index (within the cycle) of the slot containing *time_ns*."""
        return (time_ns % self.cycle_ns) // self.slot_ns

    def slot_start(self, slot_index: int, cycle_index: int = 0) -> int:
        """Absolute start time of a slot in a given cycle iteration."""
        return cycle_index * self.cycle_ns + (slot_index % self.slot_count) * self.slot_ns

    def capacity_bytes(self, rate_bps: int) -> int:
        """Bytes one port can serialize within a slot (ignoring framing).

        A planning upper bound: per-frame preamble/IFG overhead (20 B per
        frame, see :func:`repro.core.units.wire_bytes`) reduces the usable
        share further, so schedulers should keep per-slot TS load well below
        this.
        """
        return self.slot_ns * rate_bps // (8 * 10**9)
