"""Analytic CQF latency bounds (paper Eq. (1)).

Under Cyclic Queuing and Forwarding the end-to-end latency of a TS packet
that traverses ``hop`` switches with time slot ``slot_size`` is bounded by::

    L_max = (hop + 1) * slot_size
    L_min = (hop - 1) * slot_size

The intuition: a packet received by a switch during slot *k* is transmitted
during slot *k+1*, so each hop contributes exactly one slot of progress; the
+-1 slot captures where within its injection slot the packet was sent and
where within the delivery slot it arrives.

These bounds are what Fig. 7 validates empirically; the benchmark harness
asserts every simulated TS latency falls inside them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SchedulingError

__all__ = ["CqfBounds", "cqf_bounds"]


@dataclass(frozen=True)
class CqfBounds:
    """The Eq. (1) latency window for one (hop count, slot size) pair."""

    hops: int
    slot_ns: int

    @property
    def min_ns(self) -> int:
        return (self.hops - 1) * self.slot_ns

    @property
    def max_ns(self) -> int:
        return (self.hops + 1) * self.slot_ns

    @property
    def mean_ns(self) -> float:
        """Centre of the window -- the expected latency, ``hop * slot``."""
        return float(self.hops * self.slot_ns)

    def contains(self, latency_ns: int) -> bool:
        return self.min_ns <= latency_ns <= self.max_ns


def cqf_bounds(hops: int, slot_ns: int) -> CqfBounds:
    """Eq. (1) bounds; validates arguments."""
    if hops < 1:
        raise SchedulingError(f"hop count must be >= 1, got {hops}")
    if slot_ns <= 0:
        raise SchedulingError(f"slot size must be positive, got {slot_ns}")
    return CqfBounds(hops, slot_ns)
