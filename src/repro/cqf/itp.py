"""Injection Time Planning (ITP) -- when should each TS flow inject?

The paper sizes its queues "with our flow scheduling algorithm [24]" (Yan et
al., *Injection Time Planning: Making CQF Practical in Time-Sensitive
Networking*, INFOCOM 2020).  The idea: under CQF a packet injected during
slot *s* occupies the gathering queue of slot *s* on every hop, so the
*injection slot choice* alone decides per-slot queue occupancy network-wide.
Left unplanned (all flows injecting at period start), 1024 flows pile into
one slot and need 1024 descriptors of queue depth; spread across the ~153
slots of a 10 ms period they need only ~7 -- which is exactly why the
paper's customized queue depth of 8-12 is safe.

:class:`ItpPlanner` implements the greedy load-balancing core: flows are
processed in decreasing bandwidth-demand order and each picks the feasible
injection slot that minimizes the worst per-slot load it touches.  The
resulting :class:`ItpPlan` reports the achieved ``max_frames_per_slot`` --
the queue-depth requirement the sizing guidelines consume -- and concrete
injection timestamps for the traffic generators.

The load model is network-global (all TS flows of the evaluated scenarios
share the ring/linear/star trunk path, so the busiest egress port sees every
flow); a per-port refinement would only relax the bound.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.errors import SchedulingError
from repro.core.units import GIGABIT, serialization_ns, wire_bytes
from repro.traffic.flows import FlowSpec, TrafficClass
from .schedule import CqfSchedule

__all__ = ["ItpAssignment", "ItpPlan", "ItpPlanner", "unplanned_plan"]


@dataclass(frozen=True)
class ItpAssignment:
    """One flow's planned injection: slot offset + phase within the slot."""

    flow_id: int
    offset_slot: int      # slot index within the flow's own period
    phase_ns: int         # offset into the slot (staggers same-slot flows)
    period_slots: int     # the flow's period expressed in slots


@dataclass
class ItpPlan:
    """Outcome of planning one TS flow set onto a schedule."""

    schedule: CqfSchedule
    assignments: Dict[int, ItpAssignment] = field(default_factory=dict)
    slot_frames: List[int] = field(default_factory=list)
    slot_bytes: List[int] = field(default_factory=list)

    @property
    def max_frames_per_slot(self) -> int:
        """Worst-case gathering-queue occupancy: the queue-depth requirement."""
        return max(self.slot_frames, default=0)

    @property
    def max_bytes_per_slot(self) -> int:
        return max(self.slot_bytes, default=0)

    @property
    def required_queue_depth(self) -> int:
        """Paper III.C(4): 'the queue should hold all the packets that
        arrive at the queue in the same slot'."""
        return self.max_frames_per_slot

    def load_balance_ratio(self) -> float:
        """max/mean per-slot frames; 1.0 is a perfectly level plan."""
        if not self.slot_frames or self.max_frames_per_slot == 0:
            return 1.0
        mean = sum(self.slot_frames) / len(self.slot_frames)
        return self.max_frames_per_slot / mean if mean else float("inf")

    def injection_ns(self, flow: FlowSpec, k: int) -> int:
        """Absolute injection time of flow's *k*-th packet."""
        assignment = self.assignments[flow.flow_id]
        assert flow.period_ns is not None
        return (
            k * flow.period_ns
            + assignment.offset_slot * self.schedule.slot_ns
            + assignment.phase_ns
        )


def _solve_legacy(
    backend: str,
    schedule: CqfSchedule,
    flows: Sequence[FlowSpec],
    rate_bps: int,
    slot_utilization_limit: float = 0.5,
) -> ItpPlan:
    """Run a :mod:`repro.sched` backend and project to the legacy plan."""
    # Imported lazily: repro.sched converts plans *to* this module.
    from repro.sched import SchedulingProblem, make_scheduler

    ts_flows = [f for f in flows if f.traffic_class is TrafficClass.TS]
    problem = SchedulingProblem.from_flows(
        ts_flows,
        schedule,
        rate_bps,
        slot_utilization_limit=slot_utilization_limit,
    )
    plan = make_scheduler(backend).solve(problem)
    plan.raise_if_infeasible()
    return plan.to_itp_plan()


class ItpPlanner:
    """Greedy slot load balancing over one CQF schedule.

    .. deprecated::
        Construct backends through :func:`repro.sched.make_scheduler`
        instead; ``ItpPlanner`` is now a thin shim over the ``greedy``
        backend (byte-identical plans) kept for source compatibility.
    """

    def __init__(self, schedule: CqfSchedule, rate_bps: int = GIGABIT):
        warnings.warn(
            "ItpPlanner is deprecated; use "
            "repro.sched.make_scheduler('greedy') and solve a "
            "SchedulingProblem (or repro.sched.plan_flows) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.schedule = schedule
        self.rate_bps = rate_bps

    def plan(
        self,
        flows: Sequence[FlowSpec],
        slot_utilization_limit: float = 0.5,
    ) -> ItpPlan:
        """Assign every TS flow in *flows* an injection slot and phase.

        *slot_utilization_limit* bounds how much of a slot's wire time the
        planner may fill with TS frames: CQF needs every gathered frame
        drained within the next slot, and headroom must remain for one
        in-flight lower-priority MTU frame at each hop.  Exceeding the limit
        raises :class:`SchedulingError` -- the flow set is infeasible at
        this slot size.
        """
        return _solve_legacy(
            "greedy", self.schedule, flows, self.rate_bps,
            slot_utilization_limit,
        )


def unplanned_plan(
    schedule: CqfSchedule,
    flows: Sequence[FlowSpec],
    rate_bps: int = GIGABIT,
) -> ItpPlan:
    """The no-ITP strawman: every flow injects at its period start.

    All same-period flows collide in slot 0, so ``required_queue_depth``
    approaches the flow count -- the ablation benchmark uses this to show
    what ITP buys.

    .. deprecated::
        Use ``repro.sched.make_scheduler('unplanned')`` instead; this shim
        delegates to that backend.
    """
    warnings.warn(
        "unplanned_plan is deprecated; use "
        "repro.sched.make_scheduler('unplanned') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_legacy("unplanned", schedule, flows, rate_bps)
