"""Injection Time Planning (ITP) -- when should each TS flow inject?

The paper sizes its queues "with our flow scheduling algorithm [24]" (Yan et
al., *Injection Time Planning: Making CQF Practical in Time-Sensitive
Networking*, INFOCOM 2020).  The idea: under CQF a packet injected during
slot *s* occupies the gathering queue of slot *s* on every hop, so the
*injection slot choice* alone decides per-slot queue occupancy network-wide.
Left unplanned (all flows injecting at period start), 1024 flows pile into
one slot and need 1024 descriptors of queue depth; spread across the ~153
slots of a 10 ms period they need only ~7 -- which is exactly why the
paper's customized queue depth of 8-12 is safe.

:class:`ItpPlanner` implements the greedy load-balancing core: flows are
processed in decreasing bandwidth-demand order and each picks the feasible
injection slot that minimizes the worst per-slot load it touches.  The
resulting :class:`ItpPlan` reports the achieved ``max_frames_per_slot`` --
the queue-depth requirement the sizing guidelines consume -- and concrete
injection timestamps for the traffic generators.

The load model is network-global (all TS flows of the evaluated scenarios
share the ring/linear/star trunk path, so the busiest egress port sees every
flow); a per-port refinement would only relax the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SchedulingError
from repro.core.units import GIGABIT, serialization_ns, wire_bytes
from repro.traffic.flows import FlowSpec, TrafficClass
from .schedule import CqfSchedule

__all__ = ["ItpAssignment", "ItpPlan", "ItpPlanner", "unplanned_plan"]


@dataclass(frozen=True)
class ItpAssignment:
    """One flow's planned injection: slot offset + phase within the slot."""

    flow_id: int
    offset_slot: int      # slot index within the flow's own period
    phase_ns: int         # offset into the slot (staggers same-slot flows)
    period_slots: int     # the flow's period expressed in slots


@dataclass
class ItpPlan:
    """Outcome of planning one TS flow set onto a schedule."""

    schedule: CqfSchedule
    assignments: Dict[int, ItpAssignment] = field(default_factory=dict)
    slot_frames: List[int] = field(default_factory=list)
    slot_bytes: List[int] = field(default_factory=list)

    @property
    def max_frames_per_slot(self) -> int:
        """Worst-case gathering-queue occupancy: the queue-depth requirement."""
        return max(self.slot_frames, default=0)

    @property
    def max_bytes_per_slot(self) -> int:
        return max(self.slot_bytes, default=0)

    @property
    def required_queue_depth(self) -> int:
        """Paper III.C(4): 'the queue should hold all the packets that
        arrive at the queue in the same slot'."""
        return self.max_frames_per_slot

    def load_balance_ratio(self) -> float:
        """max/mean per-slot frames; 1.0 is a perfectly level plan."""
        if not self.slot_frames or self.max_frames_per_slot == 0:
            return 1.0
        mean = sum(self.slot_frames) / len(self.slot_frames)
        return self.max_frames_per_slot / mean if mean else float("inf")

    def injection_ns(self, flow: FlowSpec, k: int) -> int:
        """Absolute injection time of flow's *k*-th packet."""
        assignment = self.assignments[flow.flow_id]
        assert flow.period_ns is not None
        return (
            k * flow.period_ns
            + assignment.offset_slot * self.schedule.slot_ns
            + assignment.phase_ns
        )


class ItpPlanner:
    """Greedy slot load balancing over one CQF schedule."""

    def __init__(self, schedule: CqfSchedule, rate_bps: int = GIGABIT):
        self.schedule = schedule
        self.rate_bps = rate_bps

    def plan(
        self,
        flows: Sequence[FlowSpec],
        slot_utilization_limit: float = 0.5,
    ) -> ItpPlan:
        """Assign every TS flow in *flows* an injection slot and phase.

        *slot_utilization_limit* bounds how much of a slot's wire time the
        planner may fill with TS frames: CQF needs every gathered frame
        drained within the next slot, and headroom must remain for one
        in-flight lower-priority MTU frame at each hop.  Exceeding the limit
        raises :class:`SchedulingError` -- the flow set is infeasible at
        this slot size.
        """
        ts_flows = [f for f in flows if f.traffic_class is TrafficClass.TS]
        slot_count = self.schedule.slot_count
        plan = ItpPlan(
            self.schedule,
            slot_frames=[0] * slot_count,
            slot_bytes=[0] * slot_count,
        )
        budget_bytes = int(
            self.schedule.capacity_bytes(self.rate_bps) * slot_utilization_limit
        )
        # Largest bandwidth demand first: the classic greedy-balance order.
        ordered = sorted(
            ts_flows, key=lambda f: (-f.effective_rate_bps, f.flow_id)
        )
        for flow in ordered:
            self._place(flow, plan, budget_bytes)
        self._assign_phases(plan, ts_flows)
        return plan

    # ----------------------------------------------------------- internals

    def _period_slots(self, flow: FlowSpec) -> int:
        assert flow.period_ns is not None
        if flow.period_ns % self.schedule.slot_ns:
            raise SchedulingError(
                f"flow {flow.flow_id}: period {flow.period_ns}ns is not a "
                f"multiple of the slot {self.schedule.slot_ns}ns"
            )
        return flow.period_ns // self.schedule.slot_ns

    def _place(self, flow: FlowSpec, plan: ItpPlan, budget_bytes: int) -> None:
        period_slots = self._period_slots(flow)
        slot_count = self.schedule.slot_count
        occupancy = wire_bytes(flow.size_bytes)
        best_offset: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for offset in range(period_slots):
            touched = range(offset, slot_count, period_slots)
            worst_frames = max(plan.slot_frames[s] for s in touched)
            total_bytes = max(plan.slot_bytes[s] for s in touched)
            if total_bytes + occupancy > budget_bytes:
                continue
            key = (worst_frames, total_bytes)
            if best_key is None or key < best_key:
                best_key = key
                best_offset = offset
        if best_offset is None:
            raise SchedulingError(
                f"flow {flow.flow_id}: no injection slot keeps per-slot TS "
                f"load within {budget_bytes}B -- reduce flows or widen slots"
            )
        for s in range(best_offset, slot_count, period_slots):
            plan.slot_frames[s] += 1
            plan.slot_bytes[s] += occupancy
        plan.assignments[flow.flow_id] = ItpAssignment(
            flow.flow_id, best_offset, phase_ns=0, period_slots=period_slots
        )

    def _assign_phases(self, plan: ItpPlan, flows: Sequence[FlowSpec]) -> None:
        """Stagger same-slot flows so talker NICs do not burst.

        Flows sharing an injection slot get consecutive phases spaced by
        one wire time of their frame, keeping the gathered burst compact at
        the head of the slot (maximizing drain margin in the next slot).
        """
        next_phase: Dict[int, int] = {}
        for flow in flows:
            if flow.flow_id not in plan.assignments:
                continue
            assignment = plan.assignments[flow.flow_id]
            slot = assignment.offset_slot % self.schedule.slot_count
            phase = next_phase.get(slot, 0)
            next_phase[slot] = phase + serialization_ns(
                wire_bytes(flow.size_bytes), self.rate_bps
            )
            plan.assignments[flow.flow_id] = ItpAssignment(
                flow.flow_id,
                assignment.offset_slot,
                phase_ns=phase,
                period_slots=assignment.period_slots,
            )


def unplanned_plan(
    schedule: CqfSchedule,
    flows: Sequence[FlowSpec],
    rate_bps: int = GIGABIT,
) -> ItpPlan:
    """The no-ITP strawman: every flow injects at its period start.

    All same-period flows collide in slot 0, so ``required_queue_depth``
    approaches the flow count -- the ablation benchmark uses this to show
    what ITP buys.
    """
    ts_flows = [f for f in flows if f.traffic_class is TrafficClass.TS]
    slot_count = schedule.slot_count
    plan = ItpPlan(
        schedule, slot_frames=[0] * slot_count, slot_bytes=[0] * slot_count
    )
    phase: Dict[int, int] = {}
    for flow in ts_flows:
        assert flow.period_ns is not None
        if flow.period_ns % schedule.slot_ns:
            raise SchedulingError(
                f"flow {flow.flow_id}: period not slot-aligned"
            )
        period_slots = flow.period_ns // schedule.slot_ns
        for s in range(0, slot_count, period_slots):
            plan.slot_frames[s] += 1
            plan.slot_bytes[s] += wire_bytes(flow.size_bytes)
        p = phase.get(0, 0)
        phase[0] = p + serialization_ns(wire_bytes(flow.size_bytes), rate_bps)
        plan.assignments[flow.flow_id] = ItpAssignment(
            flow.flow_id, 0, phase_ns=p, period_slots=period_slots
        )
    return plan
