"""Minimal in-tree PEP 517 build backend (stdlib only).

The standard setuptools editable-install path needs the ``wheel`` package,
which offline environments may lack.  This backend implements just enough
of PEP 517/660 for this project with nothing beyond the standard library:

* ``build_wheel`` -- zips ``src/repro`` into a normal wheel;
* ``build_editable`` -- a wheel containing only a ``.pth`` file pointing at
  ``src/`` (the classic editable mechanism), so ``pip install -e .`` works
  with no build dependencies at all;
* ``build_sdist`` -- a tar.gz of the repository sources.

Declared via ``[build-system] backend-path = ["."]`` in pyproject.toml with
an empty ``requires`` list, so pip's build isolation has nothing to fetch.
"""

from __future__ import annotations

import base64
import hashlib
import os
import tarfile
import zipfile
from pathlib import Path

NAME = "repro"
VERSION = "0.1.0"
TAG = "py3-none-any"
ROOT = Path(__file__).resolve().parent

_METADATA = f"""\
Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: TSN-Builder reproduction: template-based customization of resource-efficient TSN switches (DAC 2020)
Requires-Python: >=3.9
"""

_WHEEL = f"""\
Wheel-Version: 1.0
Generator: {NAME}-intree-backend
Root-Is-Purelib: true
Tag: {TAG}
"""


# --------------------------------------------------------------- PEP 517 API


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def _dist_info() -> str:
    return f"{NAME}-{VERSION}.dist-info"


def prepare_metadata_for_build_wheel(metadata_directory,
                                     config_settings=None):
    info = Path(metadata_directory) / _dist_info()
    info.mkdir(parents=True, exist_ok=True)
    (info / "METADATA").write_text(_METADATA)
    (info / "WHEEL").write_text(_WHEEL)
    return _dist_info()


prepare_metadata_for_build_editable = prepare_metadata_for_build_wheel


def _record_line(archive_name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(
        hashlib.sha256(data).digest()
    ).rstrip(b"=").decode()
    return f"{archive_name},sha256={digest},{len(data)}"


def _write_wheel(wheel_path: Path, files: dict) -> None:
    """*files*: archive name -> bytes.  RECORD is appended automatically."""
    record_name = f"{_dist_info()}/RECORD"
    records = [_record_line(name, data) for name, data in files.items()]
    records.append(f"{record_name},,")
    with zipfile.ZipFile(wheel_path, "w", zipfile.ZIP_DEFLATED) as archive:
        for name, data in files.items():
            archive.writestr(name, data)
        archive.writestr(record_name, "\n".join(records) + "\n")


def _package_files() -> dict:
    files = {}
    package_root = ROOT / "src" / NAME
    # .c sources ride along so an installed package can compile the
    # optional kernel backend on demand (repro.sim.fastpath).
    for pattern in ("*.py", "*.c"):
        for path in sorted(package_root.rglob(pattern)):
            archive_name = str(path.relative_to(ROOT / "src"))
            files[archive_name.replace(os.sep, "/")] = path.read_bytes()
    return files


def _compiled_extension():
    """Best-effort compile of the optional kernel backend.

    Delegates to ``repro.sim.fastpath`` (loaded by path, no import side
    effects on sys.path) so build time and runtime share one compile
    recipe.  Returns the built ``.so`` path, or None when there is no C
    toolchain or the compile fails -- the extension is strictly optional
    and the runtime loader retries on first use anyway.
    """
    import importlib.util

    source = ROOT / "src" / NAME / "sim" / "fastpath.py"
    try:
        spec = importlib.util.spec_from_file_location(
            "_repro_fastpath_buildtime", source
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.build()
    except Exception:
        return None


def _meta_files() -> dict:
    return {
        f"{_dist_info()}/METADATA": _METADATA.encode(),
        f"{_dist_info()}/WHEEL": _WHEEL.encode(),
        f"{_dist_info()}/top_level.txt": f"{NAME}\n".encode(),
    }


def build_wheel(wheel_directory, config_settings=None,
                metadata_directory=None):
    wheel_name = f"{NAME}-{VERSION}-{TAG}.whl"
    files = _package_files()
    # Pip always builds this project's wheel locally (no published binary
    # wheels), so a freshly compiled extension matches the installing
    # interpreter; without a toolchain the wheel ships source-only and the
    # runtime loader degrades to the pure Python kernel.
    compiled = _compiled_extension()
    if compiled is not None:
        try:
            rel = compiled.relative_to(ROOT / "src")
        except ValueError:
            rel = None  # built into the tmp fallback dir: leave it there
        if rel is not None:
            files[str(rel).replace(os.sep, "/")] = compiled.read_bytes()
    files.update(_meta_files())
    _write_wheel(Path(wheel_directory) / wheel_name, files)
    return wheel_name


def build_editable(wheel_directory, config_settings=None,
                   metadata_directory=None):
    wheel_name = f"{NAME}-{VERSION}-{TAG}.whl"
    src_dir = str(ROOT / "src")
    files = {
        f"__editable__.{NAME}.pth": (src_dir + "\n").encode(),
    }
    files.update(_meta_files())
    # The .pth points into the tree, so compiling in place readies the
    # optional backend for editable installs too (silently skipped
    # without a toolchain).
    _compiled_extension()
    _write_wheel(Path(wheel_directory) / wheel_name, files)
    return wheel_name


def build_sdist(sdist_directory, config_settings=None):
    sdist_name = f"{NAME}-{VERSION}.tar.gz"
    base = f"{NAME}-{VERSION}"
    include = ["pyproject.toml", "setup.py", "README.md", "DESIGN.md",
               "EXPERIMENTS.md", "Makefile", "_build_backend.py"]
    with tarfile.open(Path(sdist_directory) / sdist_name, "w:gz") as archive:
        for name in include:
            path = ROOT / name
            if path.exists():
                archive.add(path, arcname=f"{base}/{name}")
        for directory in ("src", "tests", "benchmarks", "examples", "docs"):
            path = ROOT / directory
            if path.exists():
                archive.add(
                    path,
                    arcname=f"{base}/{directory}",
                    filter=lambda info: (
                        None
                        if "__pycache__" in info.name
                        or info.name.endswith(".so")
                        else info
                    ),
                )
    return sdist_name
