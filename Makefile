# Convenience targets for the TSN-Builder reproduction.

PYTHON ?= python3

.PHONY: install fastpath test test-c bench bench-obs bench-campaign bench-kernel bench-sched bench-shard bench-check bench-full examples lint-rtl outputs clean

install:
	$(PYTHON) setup.py develop

fastpath:
	PYTHONPATH=src $(PYTHON) -c "from repro.sim import fastpath; \
	path = fastpath.build(verbose=True); \
	print(f'compiled backend at {path}' if path else 'no C toolchain: pure Python kernel only')"

test:
	$(PYTHON) -m pytest tests/

test-c: fastpath
	REPRO_BACKEND=c $(PYTHON) -m pytest tests/

bench: bench-obs
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-obs:
	$(PYTHON) benchmarks/bench_obs_overhead.py --output BENCH_obs.json

bench-campaign:
	$(PYTHON) benchmarks/bench_campaign.py --output BENCH_campaign.json

bench-kernel:
	$(PYTHON) benchmarks/bench_kernel.py --output BENCH_kernel.json

bench-sched:
	$(PYTHON) benchmarks/bench_sched.py --output BENCH_sched.json

bench-shard:
	$(PYTHON) benchmarks/bench_shard.py --output BENCH_shard.json

bench-check:
	PYTHONPATH=src $(PYTHON) -m repro bench check --suite all

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

lint-rtl:
	$(PYTHON) -m repro emit-rtl --preset ring --outdir build/rtl-lint >/dev/null && echo "RTL bundle lints clean"

outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build .pytest_cache .benchmarks
	rm -f src/repro/sim/_fastpath*.so
	find . -name __pycache__ -type d -exec rm -rf {} +
